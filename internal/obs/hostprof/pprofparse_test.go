package hostprof

import (
	"bytes"
	"runtime/pprof"
	"testing"

	"github.com/moatlab/melody/internal/obs/profile"
)

// encodeTestProfile builds a profile with the repo's own encoder —
// parser and encoder round-tripping each other pins both sides of the
// wire format without any external fixture.
func encodeTestProfile(t *testing.T, gz bool) []byte {
	t.Helper()
	p := &profile.Profile{
		SampleTypes: []profile.ValueType{
			{Type: "inuse_objects", Unit: "count"},
			{Type: "inuse_space", Unit: "bytes"},
		},
		DefaultSampleType: "inuse_space",
		DurationNanos:     5e9,
		Samples: []profile.Sample{
			// Encoder stacks are root-first; pprof locations (and the
			// parser's Stack) are leaf-first.
			{Stack: []string{"main", "alloc"}, Values: []int64{3, 4096},
				Labels: []profile.Label{{Key: "job_id", Str: "run-000042"}}},
			{Stack: []string{"main", "serve", "handler"}, Values: []int64{1, 512}},
		},
	}
	if !gz {
		return p.Encode()
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestParseRoundTrip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		data := encodeTestProfile(t, gz)
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("Parse(gz=%v): %v", gz, err)
		}
		if len(got.SampleTypes) != 2 || got.SampleTypes[1] != (ValueType{"inuse_space", "bytes"}) {
			t.Fatalf("sample types = %+v", got.SampleTypes)
		}
		if got.DefaultSampleType != "inuse_space" {
			t.Fatalf("default sample type = %q", got.DefaultSampleType)
		}
		if got.DurationNanos != 5e9 {
			t.Fatalf("duration = %d", got.DurationNanos)
		}
		if len(got.Samples) != 2 {
			t.Fatalf("samples = %+v", got.Samples)
		}
		s0 := got.Samples[0]
		if len(s0.Stack) != 2 || s0.Stack[0] != "alloc" || s0.Stack[1] != "main" {
			t.Fatalf("stack not leaf-first: %v", s0.Stack)
		}
		if s0.Values[0] != 3 || s0.Values[1] != 4096 {
			t.Fatalf("values = %v", s0.Values)
		}
		if vs := got.LabelValues("job_id"); len(vs) != 1 || vs[0] != "run-000042" {
			t.Fatalf("job_id label = %v", vs)
		}
		if got.Total(1) != 4608 {
			t.Fatalf("Total(1) = %d", got.Total(1))
		}
		if got.TypeIndex("inuse_space") != 1 || got.TypeIndex("absent") != -1 {
			t.Fatal("TypeIndex lookup wrong")
		}
	}
}

// TestParseRuntimeHeapProfile feeds the parser a real runtime/pprof
// heap profile — the exact bytes the profiler stores — so the parser is
// pinned against the toolchain's writer, not only our own encoder.
func TestParseRuntimeHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.TypeIndex("inuse_space") < 0 {
		t.Fatalf("heap profile missing inuse_space: %+v", got.SampleTypes)
	}
	if len(got.Samples) == 0 {
		t.Fatal("heap profile decoded zero samples")
	}
	for _, s := range got.Samples {
		if len(s.Stack) == 0 {
			t.Fatal("sample with empty stack")
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x1f, 0x8b, 0xff}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
	if _, err := Parse([]byte("not a profile at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDiffHeap(t *testing.T) {
	mk := func(growBytes int64) *Parsed {
		return &Parsed{
			SampleTypes: []ValueType{{"inuse_objects", "count"}, {"inuse_space", "bytes"}},
			Samples: []ParsedSample{
				{Stack: []string{"grow", "main"}, Values: []int64{10, 1000 + growBytes}},
				{Stack: []string{"steady", "main"}, Values: []int64{5, 500}},
				{Stack: []string{"shrink", "main"}, Values: []int64{2, 200 - growBytes/10}},
			},
		}
	}
	from, to := mk(0), mk(4000)
	d, err := DiffHeap(from, to, 0)
	if err != nil {
		t.Fatalf("DiffHeap: %v", err)
	}
	if d.SortedBy != "inuse_space" {
		t.Fatalf("SortedBy = %q", d.SortedBy)
	}
	if d.Totals[1] != 4000-400 {
		t.Fatalf("Totals = %v", d.Totals)
	}
	// steady's row is all-zero → dropped; grow ranks above shrink.
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %+v", d.Rows)
	}
	if d.Rows[0].Stack[0] != "grow" || d.Rows[0].Delta[1] != 4000 {
		t.Fatalf("top row = %+v", d.Rows[0])
	}
	if d.Rows[1].Stack[0] != "shrink" || d.Rows[1].Delta[1] != -400 {
		t.Fatalf("second row = %+v", d.Rows[1])
	}

	// Row cap reports the truncation.
	capped, err := DiffHeap(from, to, 1)
	if err != nil {
		t.Fatalf("DiffHeap capped: %v", err)
	}
	if len(capped.Rows) != 1 || capped.RowsTruncated != 1 {
		t.Fatalf("capped = %d rows, %d truncated", len(capped.Rows), capped.RowsTruncated)
	}

	// Mismatched sample types refuse to diff.
	bad := &Parsed{SampleTypes: []ValueType{{"samples", "count"}}}
	if _, err := DiffHeap(bad, to, 0); err == nil {
		t.Fatal("sample-type mismatch accepted")
	}
}

func TestDiffHeapRealSnapshots(t *testing.T) {
	snap := func() *Parsed {
		var buf bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		p, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		return p
	}
	from := snap()
	sink = make([]byte, 1<<20)
	to := snap()
	d, err := DiffHeap(from, to, 0)
	if err != nil {
		t.Fatalf("DiffHeap on real snapshots: %v", err)
	}
	if d.SortedBy != "inuse_space" {
		t.Fatalf("SortedBy = %q", d.SortedBy)
	}
	sink = nil
}

// sink keeps the allocation in TestDiffHeapRealSnapshots live across
// the second snapshot.
var sink []byte
