package obs

import (
	"testing"

	"github.com/moatlab/melody/internal/mem"
)

func TestDeviceObserverAttributed(t *testing.T) {
	o := NewDeviceObserver()
	o.ObserveAccess(mem.AccessObservation{
		Kind: mem.DemandRead, Start: 100, Done: 420,
		LinkReqNs: 40, SchedWaitNs: 80, MediaNs: 150, LinkRspNs: 50,
		Attributed: true, Hiccup: true,
	})
	o.ObserveAccess(mem.AccessObservation{
		Kind: mem.Write, Start: 500, Done: 900,
		LinkReqNs: 40, SchedWaitNs: 160, MediaNs: 150, LinkRspNs: 50,
		Attributed: true, Thermal: true,
	})
	if o.Latency.Count() != 2 {
		t.Fatalf("latency count = %d", o.Latency.Count())
	}
	if o.Media.Count() != 2 || o.SchedWait.Count() != 2 {
		t.Fatal("component histograms not populated for attributed accesses")
	}

	reg := NewRegistry()
	o.MergeInto(reg, "device/EMR2S/CXL-A")
	s := reg.Snapshot()
	for _, name := range []string{
		"device/EMR2S/CXL-A/latency_ns",
		"device/EMR2S/CXL-A/link_req_ns",
		"device/EMR2S/CXL-A/sched_wait_ns",
		"device/EMR2S/CXL-A/media_ns",
		"device/EMR2S/CXL-A/link_rsp_ns",
	} {
		if _, ok := s.Histograms[name]; !ok {
			t.Fatalf("registry missing histogram %q", name)
		}
	}
	if s.Counters["device/EMR2S/CXL-A/reads"] != 1 || s.Counters["device/EMR2S/CXL-A/writes"] != 1 {
		t.Fatalf("read/write counters wrong: %v", s.Counters)
	}
	if s.Counters["device/EMR2S/CXL-A/hiccup_stalls"] != 1 || s.Counters["device/EMR2S/CXL-A/thermal_stalls"] != 1 {
		t.Fatalf("stall counters wrong: %v", s.Counters)
	}
}

func TestDeviceObserverUnattributed(t *testing.T) {
	o := NewDeviceObserver()
	for i := 0; i < 10; i++ {
		o.ObserveAccess(mem.AccessObservation{Kind: mem.DemandRead, Start: 0, Done: 95})
	}
	if o.Latency.Count() != 10 {
		t.Fatalf("latency count = %d", o.Latency.Count())
	}
	if o.LinkReq.Count() != 0 {
		t.Fatal("unattributed access leaked into component histogram")
	}
	reg := NewRegistry()
	o.MergeInto(reg, "device/EMR2S/Local")
	s := reg.Snapshot()
	if _, ok := s.Histograms["device/EMR2S/Local/latency_ns"]; !ok {
		t.Fatal("latency histogram missing")
	}
	if _, ok := s.Histograms["device/EMR2S/Local/link_req_ns"]; ok {
		t.Fatal("component histogram created for a device with no attribution")
	}
	if _, ok := s.Counters["device/EMR2S/Local/hiccup_stalls"]; ok {
		t.Fatal("stall counter created for a device with no attribution")
	}
}

func TestDeviceObserverNilMerge(t *testing.T) {
	var o *DeviceObserver
	o.MergeInto(NewRegistry(), "x") // no-op, no panic
	NewDeviceObserver().MergeInto(nil, "x")
}
