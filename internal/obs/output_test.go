package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEnsureWritableFileCreatesParents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "out.json")
	if err := EnsureWritableFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file not created: %v", err)
	}
}

func TestEnsureWritableFileKeepsContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := os.WriteFile(path, []byte("existing"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureWritableFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "existing" {
		t.Fatalf("probe truncated the file: %q", got)
	}
}

func TestEnsureWritableFileErrors(t *testing.T) {
	if err := EnsureWritableFile(""); err == nil {
		t.Fatal("empty path accepted")
	}
	dir := t.TempDir()
	// A path whose parent is a regular file cannot be created.
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureWritableFile(filepath.Join(blocker, "out.json")); err == nil {
		t.Fatal("path under a regular file accepted")
	}
	if os.Getuid() != 0 { // root ignores permission bits
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := EnsureWritableFile(filepath.Join(ro, "out.json")); err == nil {
			t.Fatal("read-only directory accepted")
		}
	}
}

func TestEnsureWritableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles", "nested")
	if err := EnsureWritableDir(dir); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		t.Fatalf("dir not created: %v", err)
	}
	// The probe file must not linger.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("probe left behind: %v", ents)
	}
}

func TestEnsureWritableDirErrors(t *testing.T) {
	if err := EnsureWritableDir(""); err == nil {
		t.Fatal("empty dir accepted")
	}
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureWritableDir(blocker); err == nil {
		t.Fatal("regular file accepted as directory")
	}
}
