package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned different counters")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name returned different gauges")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned different histograms")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("distinct names shared a counter")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	if r.Histogram("z") != nil {
		t.Fatal("nil registry returned a histogram")
	}
	NewHistogram().Merge(r.Histogram("z")) // merge of nil: no-op
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Record(float64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z/count").Add(3)
	r.Counter("a/count").Add(1)
	r.Gauge("util").Set(0.5)
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	a, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("registry JSON not deterministic")
	}
	var parsed struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]Summary `json:"histograms"`
	}
	if err := json.Unmarshal(a, &parsed); err != nil {
		t.Fatalf("registry JSON does not parse: %v", err)
	}
	if parsed.Counters["z/count"] != 3 || parsed.Counters["a/count"] != 1 {
		t.Fatalf("counters wrong: %v", parsed.Counters)
	}
	hs := parsed.Histograms["lat"]
	if hs.Count != 100 || hs.Min != 1 || hs.Max != 100 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
}

func TestGaugeNonFiniteIgnored(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Set(math.NaN())
	g.Set(math.Inf(1))
	g.Set(math.Inf(-1))
	if v := g.Value(); v != 3.5 {
		t.Fatalf("gauge = %v, want last finite value 3.5", v)
	}
}
