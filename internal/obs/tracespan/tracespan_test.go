package tracespan

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Valid() {
		t.Fatal("parsed context invalid")
	}
	if got := sc.Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q", got)
	}
	if got := sc.Span.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("span id = %q", got)
	}
	if got := sc.Traceparent(); got != h {
		t.Fatalf("re-rendered traceparent = %q, want %q", got, h)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",  // non-hex flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",      // trailing junk
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",       // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 must be exactly 55 chars
	} {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestParseTraceparentAcceptsFutureVersionSuffix(t *testing.T) {
	// Per W3C, higher versions may append fields after the flags —
	// version 00 may not (exactly 55 chars), which the malformed-header
	// test above pins.
	sc, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Valid() {
		t.Fatal("future-version context invalid")
	}
}

func TestSpanTreeAcrossComponents(t *testing.T) {
	store := NewStore(0, 0)
	tr := NewTracer(store)

	// HTTP root continuing a remote traceparent.
	remote, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	ctx, root := tr.StartRoot(context.Background(), "http POST /runs", remote, String("req_id", "r1"))
	if got := root.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("root trace id = %q, want remote trace continued", got)
	}

	// A queued hand-off: capture the context, end the root, resume later.
	parent := ContextFrom(ctx)
	root.End()

	t0 := time.Now().Add(-time.Second)
	qsc := tr.Record(parent, "queue", t0, t0.Add(200*time.Millisecond), String("job_id", "run-000001"))
	ectx, execSpan := tr.StartChild(context.Background(), qsc, "exec", String("spec_hash", "sha256:abc"))

	// Downstream layers use ctx-carried Start.
	rctx, runSpan := Start(ectx, "run")
	_, cellParent := Start(rctx, "experiment", String("experiment", "fig5"))
	cellParent.Child("cell", t0, t0.Add(10*time.Millisecond), String("workload", "w"), String("outcome", "computed"))
	cellParent.End()
	runSpan.End()
	execSpan.SetError("boom")
	execSpan.End()

	sum, spans, ok := store.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not retrievable")
	}
	if sum.Status != StatusError {
		t.Fatalf("trace status = %q, want error (exec failed)", sum.Status)
	}
	if sum.SpecHash != "sha256:abc" {
		t.Fatalf("trace spec_hash = %q", sum.SpecHash)
	}
	if sum.Root != "http POST /runs" {
		t.Fatalf("trace root = %q", sum.Root)
	}
	if len(spans) != 6 {
		t.Fatalf("stored %d spans, want 6", len(spans))
	}
	for _, sd := range spans {
		if sd.TraceID != root.TraceID() {
			t.Fatalf("span %q escaped onto trace %q", sd.Name, sd.TraceID)
		}
	}

	// The tree: http is the single root (its parent is the remote span,
	// absent from the store), and the chain reaches the cell leaf.
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Name != "http POST /runs" {
		t.Fatalf("tree roots = %+v, want single http root", roots)
	}
	path := []string{}
	n := roots[0]
	for n != nil {
		path = append(path, n.Name)
		if len(n.Children) == 0 {
			break
		}
		n = n.Children[0]
	}
	want := "http POST /runs>queue>exec>run>experiment>cell"
	if got := strings.Join(path, ">"); got != want {
		t.Fatalf("span chain = %q, want %q", got, want)
	}
}

func TestStartWithoutSpanIsInert(t *testing.T) {
	ctx := context.Background()
	cctx, sp := Start(ctx, "orphan")
	if sp != nil || cctx != ctx {
		t.Fatal("Start on a span-less ctx must return (ctx, nil)")
	}
	// Every nil-span method is a no-op.
	sp.SetAttr("k", "v")
	sp.SetError("x")
	sp.End()
	if sc := sp.Child("c", time.Now(), time.Now()); sc.Valid() {
		t.Fatal("nil span recorded a child")
	}
	if sp.TraceID() != "" || sp.Context().Valid() || sp.Tracer() != nil {
		t.Fatal("nil span leaked identity")
	}
	var tr *Tracer
	if c, s := tr.StartRoot(ctx, "r", SpanContext{}); s != nil || c != ctx {
		t.Fatal("nil tracer started a span")
	}
}

func TestNoSpanPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if sp := SpanFrom(ctx); sp != nil {
			t.Fatal("span from empty ctx")
		}
	})
	if allocs != 0 {
		t.Fatalf("SpanFrom on span-less ctx allocates %.1f/op, want 0", allocs)
	}
}

func TestEndIdempotent(t *testing.T) {
	store := NewStore(0, 0)
	tr := NewTracer(store)
	_, sp := tr.StartRoot(context.Background(), "once", SpanContext{})
	sp.End()
	sp.End()
	if got := store.Stats().Added; got != 1 {
		t.Fatalf("double End stored %d spans, want 1", got)
	}
}

func TestMirrorRendersServiceSpans(t *testing.T) {
	store := NewStore(0, 0)
	tr := NewTracer(store)
	perf := obs.NewTrace()
	tr.SetMirror(perf, 3)
	_, sp := tr.StartRoot(context.Background(), "http GET /metrics", SpanContext{})
	sp.End()
	if perf.Len() != 1 {
		t.Fatalf("mirror recorded %d events, want 1", perf.Len())
	}
}
