package tracespan

import (
	"fmt"
	"testing"
	"time"
)

// mkSpan builds one synthetic root span for trace id n with the given
// duration and status.
func mkSpan(n int, dur time.Duration, status string) SpanData {
	t0 := time.Unix(1700000000, 0).Add(time.Duration(n) * time.Minute)
	return SpanData{
		TraceID:   fmt.Sprintf("%032x", n+1),
		SpanID:    fmt.Sprintf("%016x", n+1),
		Name:      fmt.Sprintf("trace-%d", n),
		Start:     t0,
		End:       t0.Add(dur),
		DurationS: dur.Seconds(),
		Status:    status,
	}
}

func TestStoreTailBiasedEviction(t *testing.T) {
	// Cap 8 → ceil(8/8) = 1 slowest trace protected. Fill with fast OK
	// traces, one errored and one slow; overflow must evict the oldest
	// plain trace and keep the protected pair.
	st := NewStore(8, 0)
	st.Add(mkSpan(0, time.Millisecond, StatusOK)) // oldest plain: the victim
	st.Add(mkSpan(1, time.Second, StatusError))   // errored: pinned
	st.Add(mkSpan(2, time.Hour, StatusOK))        // slowest: pinned
	for n := 3; n < 8; n++ {
		st.Add(mkSpan(n, time.Millisecond, StatusOK))
	}
	st.Add(mkSpan(8, time.Millisecond, StatusOK)) // overflow

	if st.Len() != 8 {
		t.Fatalf("store holds %d traces, want 8", st.Len())
	}
	if _, _, ok := st.Get(mkSpan(0, 0, "").TraceID); ok {
		t.Fatal("oldest plain trace survived eviction")
	}
	if _, _, ok := st.Get(mkSpan(1, 0, "").TraceID); !ok {
		t.Fatal("errored trace was evicted")
	}
	if _, _, ok := st.Get(mkSpan(2, 0, "").TraceID); !ok {
		t.Fatal("slowest trace was evicted")
	}
	if got := st.Stats().Evicted; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

func TestStoreEvictsOldestWhenAllProtected(t *testing.T) {
	st := NewStore(2, 0)
	st.Add(mkSpan(0, time.Second, StatusError))
	st.Add(mkSpan(1, time.Second, StatusError))
	st.Add(mkSpan(2, time.Second, StatusError))
	if st.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2", st.Len())
	}
	if _, _, ok := st.Get(mkSpan(0, 0, "").TraceID); ok {
		t.Fatal("all-protected overflow must still evict the oldest")
	}
}

// TestStoreNeverEvictsJustAddedTrace: when every older retained trace
// is protected (sustained errors), the all-protected fallback must
// evict the oldest protected trace — never the trace being added,
// which would orphan every new trace while the stats still count it.
func TestStoreNeverEvictsJustAddedTrace(t *testing.T) {
	st := NewStore(2, 0)
	st.Add(mkSpan(0, time.Second, StatusError))
	st.Add(mkSpan(1, time.Second, StatusError))
	fresh := mkSpan(2, time.Millisecond, StatusOK) // fast, OK: unprotected
	st.Add(fresh)
	if st.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2", st.Len())
	}
	if _, spans, ok := st.Get(fresh.TraceID); !ok || len(spans) != 1 {
		t.Fatalf("just-added trace lost to its own eviction: ok=%v spans=%d", ok, len(spans))
	}
	if _, _, ok := st.Get(mkSpan(0, 0, "").TraceID); ok {
		t.Fatal("oldest protected trace should have been the fallback victim")
	}
}

// TestStoreErroredArrivalProtectsItself: the span's status applies to
// its trace before the eviction its own arrival triggers, so a later
// overflow sees the trace as errored (pinned) rather than plain.
func TestStoreErroredArrivalProtectsItself(t *testing.T) {
	st := NewStore(2, 0)
	st.Add(mkSpan(0, time.Millisecond, StatusOK))
	st.Add(mkSpan(1, time.Millisecond, StatusError)) // errored on arrival
	st.Add(mkSpan(2, time.Millisecond, StatusOK))    // overflow: evicts trace 0
	if _, _, ok := st.Get(mkSpan(1, 0, "").TraceID); !ok {
		t.Fatal("errored trace evicted despite protection")
	}
	if _, _, ok := st.Get(mkSpan(0, 0, "").TraceID); ok {
		t.Fatal("plain oldest trace survived over an errored one")
	}
}

func TestStoreSpanCapDropsAndCounts(t *testing.T) {
	st := NewStore(0, 2)
	base := mkSpan(0, time.Millisecond, StatusOK)
	for i := 0; i < 5; i++ {
		sd := base
		sd.SpanID = fmt.Sprintf("%016x", i+1)
		st.Add(sd)
	}
	sum, spans, ok := st.Get(base.TraceID)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	if sum.SpansDropped != 3 {
		t.Fatalf("summary drops = %d, want 3", sum.SpansDropped)
	}
	if got := st.Stats().SpansDropped; got != 3 {
		t.Fatalf("stats drops = %d, want 3", got)
	}
}

// TestStoreSpanCapDropStillMarksError: a span rejected at spanCap must
// still contribute its status and time bounds to the trace entry —
// otherwise a trace whose failure arrived after the cap would look OK
// (and fast) to the retention policy and the /traces listing.
func TestStoreSpanCapDropStillMarksError(t *testing.T) {
	st := NewStore(0, 1)
	st.Add(mkSpan(0, time.Millisecond, StatusOK))
	late := mkSpan(0, time.Hour, StatusError)
	late.SpanID = "00000000000000ff"
	st.Add(late) // dropped by spanCap
	sum, spans, ok := st.Get(late.TraceID)
	if !ok || len(spans) != 1 {
		t.Fatalf("trace ok=%v spans=%d, want 1 retained span", ok, len(spans))
	}
	if sum.SpansDropped != 1 {
		t.Fatalf("summary drops = %d, want 1", sum.SpansDropped)
	}
	if sum.Status != StatusError {
		t.Fatalf("dropped errored span did not mark the trace: status=%q", sum.Status)
	}
	if sum.DurationS < time.Hour.Seconds() {
		t.Fatalf("dropped span's bounds ignored: duration_s=%v", sum.DurationS)
	}
}

func TestStoreListFiltersAndOrder(t *testing.T) {
	st := NewStore(0, 0)
	st.Add(mkSpan(0, time.Millisecond, StatusOK))
	st.Add(mkSpan(1, time.Second, StatusError))
	slow := mkSpan(2, time.Minute, StatusOK)
	slow.Attrs = []Attr{String("spec_hash", "sha256:fff")}
	st.Add(slow)

	all := st.List(Filter{})
	if len(all) != 3 {
		t.Fatalf("unfiltered list = %d traces, want 3", len(all))
	}
	if all[0].TraceID != slow.TraceID {
		t.Fatalf("list not newest-first: head = %s", all[0].TraceID)
	}

	if got := st.List(Filter{MinDuration: 30 * time.Second}); len(got) != 1 || got[0].TraceID != slow.TraceID {
		t.Fatalf("MinDuration filter = %+v", got)
	}
	if got := st.List(Filter{Status: StatusError}); len(got) != 1 || got[0].Status != StatusError {
		t.Fatalf("Status filter = %+v", got)
	}
	if got := st.List(Filter{SpecHash: "sha256:fff"}); len(got) != 1 || got[0].SpecHash != "sha256:fff" {
		t.Fatalf("SpecHash filter = %+v", got)
	}
	if got := st.List(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("Limit filter kept %d, want 2", len(got))
	}
	if got := st.List(Filter{SpecHash: "nope"}); len(got) != 0 {
		t.Fatalf("non-matching SpecHash returned %d traces", len(got))
	}
}

func TestStoreSummaryPicksEarliestRoot(t *testing.T) {
	st := NewStore(0, 0)
	// Two parentless spans (the real root and an orphan whose parent
	// was dropped): the summary's Root must be the earliest starter.
	late := mkSpan(0, time.Millisecond, StatusOK)
	late.Name, late.SpanID = "orphan", "00000000000000aa"
	late.Start = late.Start.Add(time.Hour)
	root := mkSpan(0, time.Second, StatusOK)
	root.Name = "http POST /runs"
	child := mkSpan(0, time.Millisecond, StatusOK)
	child.Name, child.SpanID, child.ParentID = "cell", "00000000000000bb", root.SpanID
	st.Add(late)
	st.Add(root)
	st.Add(child)
	sum, _, _ := st.Get(root.TraceID)
	if sum.Root != "http POST /runs" {
		t.Fatalf("summary root = %q, want earliest parentless span", sum.Root)
	}
	if sum.Spans != 3 {
		t.Fatalf("summary spans = %d, want 3", sum.Spans)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var st *Store
	st.Add(mkSpan(0, time.Second, StatusOK))
	if st.Len() != 0 || len(st.List(Filter{})) != 0 {
		t.Fatal("nil store not inert")
	}
	if _, _, ok := st.Get("x"); ok {
		t.Fatal("nil store returned a trace")
	}
	if st.Stats() != (StoreStats{}) {
		t.Fatal("nil store has stats")
	}
}
