package tracespan

import (
	"sort"
	"sync"
	"time"
)

// Store bounds. DefaultTraceCap is sized like the jobs queue: deep
// enough that every trace of a debugging session is still there,
// small enough that the store is always negligible next to one run's
// manifest. DefaultSpanCap bounds one trace's spans — a full Sweep48
// run is ~150 cells, so 4096 leaves generous headroom while a runaway
// producer cannot grow a trace without bound.
const (
	DefaultTraceCap = 256
	DefaultSpanCap  = 4096
)

// slowFrac is the fraction of the store reserved for the slowest
// traces: eviction never removes a trace whose duration ranks in the
// top ceil(cap·slowFrac) among retained traces. Tail-biased retention
// is the point of the store — the paper's method lives on tail
// attribution, and the traces an operator needs tomorrow are the slow
// and the broken ones, not the median.
const slowFrac = 8 // 1/8th of capacity protected as "slowest"

// StoreStats counts the store's lifetime activity (all monotonic).
type StoreStats struct {
	Added        uint64 `json:"spans_added"`
	Traces       uint64 `json:"traces_seen"`
	Evicted      uint64 `json:"traces_evicted"`
	SpansDropped uint64 `json:"spans_dropped"`
}

// Store is a bounded in-memory collection of completed spans grouped
// by trace. Writers are span producers (Tracer.finish); readers are
// the /traces handlers. Retention is tail-biased: when the trace cap
// is hit, the evicted trace is the oldest one that is neither errored
// nor among the slowest — error and slow traces survive until only
// they are left.
type Store struct {
	mu       sync.Mutex
	traceCap int
	spanCap  int
	traces   map[string]*traceEntry
	order    []string // arrival order, oldest first
	stats    StoreStats
}

// traceEntry accumulates one trace's spans and the digest retention
// and listing decisions read.
type traceEntry struct {
	id      string
	spans   []SpanData
	start   time.Time // min span start
	end     time.Time // max span end
	errored bool
	dropped uint64 // spans rejected by spanCap
}

func (e *traceEntry) duration() time.Duration { return e.end.Sub(e.start) }

// NewStore returns a store retaining up to traceCap traces of up to
// spanCap spans each (0 selects the defaults).
func NewStore(traceCap, spanCap int) *Store {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	return &Store{
		traceCap: traceCap,
		spanCap:  spanCap,
		traces:   map[string]*traceEntry{},
	}
}

// Add files one completed span under its trace, creating the trace on
// first sight and evicting per the retention policy when over cap.
func (s *Store) Add(sd SpanData) {
	if s == nil || sd.TraceID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[sd.TraceID]
	if !ok {
		e = &traceEntry{id: sd.TraceID, start: sd.Start, end: sd.End}
		s.traces[sd.TraceID] = e
		s.order = append(s.order, sd.TraceID)
		s.stats.Traces++
	}
	// Apply the span's bounds and status before any retention decision:
	// an errored span must protect its trace during the eviction its own
	// arrival triggers, and a span rejected at spanCap below still marks
	// the trace errored/slow — retention always sees the trace's true
	// extent even when the span itself is dropped.
	if sd.Start.Before(e.start) {
		e.start = sd.Start
	}
	if sd.End.After(e.end) {
		e.end = sd.End
	}
	if sd.Status == StatusError {
		e.errored = true
	}
	if !ok && len(s.order) > s.traceCap {
		s.evictLocked()
	}
	if len(e.spans) >= s.spanCap {
		e.dropped++
		s.stats.SpansDropped++
		return
	}
	e.spans = append(e.spans, sd)
	s.stats.Added++
}

// evictLocked removes one trace: the oldest that is neither errored
// nor in the protected slowest set. The newest entry — the trace Add
// is filing right now — is never the victim: evicting it would orphan
// the trace mid-add, silently losing every new trace while the stats
// still count them. When every older retained trace is protected, the
// oldest goes anyway — bounded memory beats perfect retention.
func (s *Store) evictLocked() {
	slowCount := (s.traceCap + slowFrac - 1) / slowFrac
	durs := make([]time.Duration, 0, len(s.order))
	for _, id := range s.order {
		durs = append(durs, s.traces[id].duration())
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] > durs[j] })
	var slowFloor time.Duration
	if slowCount > 0 && slowCount <= len(durs) {
		slowFloor = durs[slowCount-1]
	}
	victim := -1
	for i, id := range s.order[:len(s.order)-1] {
		e := s.traces[id]
		if e.errored || (slowFloor > 0 && e.duration() >= slowFloor) {
			continue
		}
		victim = i
		break
	}
	if victim < 0 {
		victim = 0
	}
	id := s.order[victim]
	s.order = append(s.order[:victim], s.order[victim+1:]...)
	delete(s.traces, id)
	s.stats.Evicted++
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Stats returns the store's lifetime counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TraceSummary is one trace's /traces listing row. Status is "error"
// if any span errored. Root is the earliest root span's name (the
// request that started it all); SpecHash is the first spec_hash attr
// any span carries, joining the trace to manifests, jobs and logs.
type TraceSummary struct {
	TraceID      string    `json:"trace_id"`
	Root         string    `json:"root"`
	Start        time.Time `json:"start"`
	DurationS    float64   `json:"duration_s"`
	Status       string    `json:"status"`
	Spans        int       `json:"spans"`
	SpansDropped uint64    `json:"spans_dropped,omitempty"`
	SpecHash     string    `json:"spec_hash,omitempty"`
}

func (s *Store) summaryLocked(e *traceEntry) TraceSummary {
	sum := TraceSummary{
		TraceID:      e.id,
		Start:        e.start,
		DurationS:    e.duration().Seconds(),
		Status:       StatusOK,
		Spans:        len(e.spans),
		SpansDropped: e.dropped,
	}
	if e.errored {
		sum.Status = StatusError
	}
	ids := make(map[string]bool, len(e.spans))
	for _, sd := range e.spans {
		ids[sd.SpanID] = true
	}
	var rootStart time.Time
	for _, sd := range e.spans {
		if !ids[sd.ParentID] && (sum.Root == "" || sd.Start.Before(rootStart)) {
			sum.Root, rootStart = sd.Name, sd.Start
		}
		if sum.SpecHash == "" {
			sum.SpecHash = sd.Attr("spec_hash")
		}
	}
	return sum
}

// Filter selects traces for List. Zero values match everything.
type Filter struct {
	// MinDuration drops traces shorter than this.
	MinDuration time.Duration
	// Status, when "ok" or "error", keeps only matching traces.
	Status string
	// SpecHash keeps only traces whose spans carry this spec_hash attr.
	SpecHash string
	// Limit bounds the result count (0 = no bound).
	Limit int
}

// List returns retained traces newest-first, filtered by f.
func (s *Store) List(f Filter) []TraceSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		sum := s.summaryLocked(s.traces[s.order[i]])
		if f.MinDuration > 0 && sum.DurationS < f.MinDuration.Seconds() {
			continue
		}
		if f.Status != "" && sum.Status != f.Status {
			continue
		}
		if f.SpecHash != "" && sum.SpecHash != f.SpecHash {
			continue
		}
		out = append(out, sum)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Get returns one trace's summary and a copy of its spans (in arrival
// order). ok is false for unknown (or evicted) trace ids.
func (s *Store) Get(traceID string) (TraceSummary, []SpanData, bool) {
	if s == nil {
		return TraceSummary{}, nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[traceID]
	if !ok {
		return TraceSummary{}, nil, false
	}
	return s.summaryLocked(e), append([]SpanData(nil), e.spans...), true
}
