// Package tracespan is the service plane's distributed-tracing spine:
// a stdlib-only Span/Tracer API with W3C traceparent propagation, a
// context-carried parent chain, and a bounded in-memory trace store
// (store.go) queryable over the observatory's /traces endpoints.
//
// Where obs.Trace records the *engine's* wall-clock activity for
// Perfetto, tracespan records the *request's* causal path: one HTTP
// exchange yields one trace whose span tree threads
//
//	http → queue → exec → run → experiment → cell
//
// across the serve middleware, the job manager, melody.Execute, the
// Engine and the Runner. The trace id arrives on (or is minted for)
// each request, survives the queue hand-off, and is the join key
// everywhere else: the access log's trace_id field, the X-Trace-Id
// response header, and the OpenMetrics exemplars on the RED latency
// histograms — alert → bucket → trace → cell, four clicks.
//
// Tracing is strictly observational and strictly optional. The
// disabled path is allocation-free: SpanFrom on a span-less context
// returns nil, and every method on a nil *Span or nil *Tracer is a
// no-op, so instrumented call sites need one nil check and nothing
// else. Cell spans are recorded post-completion from timings the
// caller already took, so the simulated hot path never sees the
// tracer and manifests are byte-identical with tracing on or off —
// the same contract the obs device observers established.
package tracespan

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/moatlab/melody/internal/obs"
)

// TraceID identifies one request's whole span tree (16 bytes, rendered
// as 32 lowercase hex characters — the W3C trace-id field).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID identifies one span within a trace (8 bytes, 16 hex chars —
// the W3C parent-id field).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 hex characters.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the propagatable part of a span: enough to parent a
// child in another component (or another process, via traceparent).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set — everything this tracer records is
// sampled; retention is the store's job, not the producer's).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value:
// version "-" trace-id "-" parent-id "-" flags, all lowercase hex.
// Unknown versions are accepted per spec (the four known fields still
// lead, and trailing "-..." data is tolerated); version 00 must be
// exactly 55 characters — the spec permits trailing data only for
// future versions. All-zero ids, bad lengths and non-hex bytes are
// errors.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < 55 {
		return sc, fmt.Errorf("tracespan: traceparent too short (%d chars)", len(h))
	}
	if len(h) > 55 && h[55] != '-' {
		return sc, fmt.Errorf("tracespan: malformed traceparent %q", h)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("tracespan: malformed traceparent %q", h)
	}
	ver := h[:2]
	if !isHex(ver) || ver == "ff" {
		return sc, fmt.Errorf("tracespan: bad traceparent version %q", ver)
	}
	if ver == "00" && len(h) != 55 {
		return sc, fmt.Errorf("tracespan: version-00 traceparent must be exactly 55 chars, got %d", len(h))
	}
	if !isHex(h[3:35]) {
		return sc, fmt.Errorf("tracespan: bad trace-id %q (want 32 lowercase hex chars)", h[3:35])
	}
	if !isHex(h[36:52]) {
		return sc, fmt.Errorf("tracespan: bad parent-id %q (want 16 lowercase hex chars)", h[36:52])
	}
	hex.Decode(sc.Trace[:], []byte(h[3:35]))
	hex.Decode(sc.Span[:], []byte(h[36:52]))
	if !isHex(h[53:55]) {
		return sc, fmt.Errorf("tracespan: bad traceparent flags %q", h[53:55])
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("tracespan: all-zero id in traceparent %q", h)
	}
	return sc, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one span attribute. Values are strings: span attrs exist to
// correlate (ids, names, outcomes), not to aggregate — numbers belong
// in the metrics registry.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds an Attr (the obvious constructor, named for symmetry
// with log/slog).
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Span statuses. A span is OK unless something marked it failed.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// SpanData is one completed span as stored and served: the /traces
// JSON shape. Attrs keep recording order.
type SpanData struct {
	TraceID   string    `json:"trace_id"`
	SpanID    string    `json:"span_id"`
	ParentID  string    `json:"parent_id,omitempty"`
	Name      string    `json:"name"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	DurationS float64   `json:"duration_s"`
	Status    string    `json:"status"`
	Error     string    `json:"error,omitempty"`
	Attrs     []Attr    `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" if absent).
func (sd SpanData) Attr(key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Tracer mints spans and delivers completed ones to its Store (and,
// when a mirror is set, to an obs.Trace so service spans and
// simulated-time tracks open in one Perfetto UI). A nil *Tracer is
// fully inert.
type Tracer struct {
	store *Store

	mu        sync.Mutex
	mirror    *obs.Trace
	mirrorPid int
}

// NewTracer returns a tracer recording into store (which must be
// non-nil).
func NewTracer(store *Store) *Tracer {
	return &Tracer{store: store}
}

// Store returns the tracer's span store.
func (t *Tracer) Store() *Store {
	if t == nil {
		return nil
	}
	return t.store
}

// SetMirror additionally renders every completed span into tr under
// pid, via obs.Trace.CompleteAt — the bridge that puts service spans
// next to the engine's worker/sample tracks in one Perfetto trace.
// A nil tr clears the mirror.
func (t *Tracer) SetMirror(tr *obs.Trace, pid int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mirror = tr
	t.mirrorPid = pid
	t.mu.Unlock()
	tr.SetProcessName(pid, "service spans")
	tr.SetThreadName(pid, 0, "requests")
}

// newIDs mints a fresh span id (and, when trace is zero, a fresh trace
// id) from crypto/rand, like svclog request ids: uniqueness matters,
// determinism explicitly does not — ids never reach manifests.
func newSpanID() SpanID {
	var id SpanID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		id = SpanID{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef}
	}
	return id
}

func newTraceID() TraceID {
	var id TraceID
	if _, err := rand.Read(id[:]); err != nil || id.IsZero() {
		id[0] = 0xde
	}
	return id
}

// Span is one in-flight operation. Spans are created by a Tracer
// (StartRoot/StartChild) or from a parent in the context (Start); a
// nil *Span no-ops every method, which is the entire disabled path.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	errMsg string
	failed bool
	ended  bool
}

// StartRoot begins a trace-root span. When parent is valid — an
// upstream traceparent arrived — the new span continues that trace as
// a child of the remote span; otherwise a fresh trace id is minted.
// The returned context carries the span for Start/SpanFrom below.
func (t *Tracer) StartRoot(ctx context.Context, name string, parent SpanContext, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sc := SpanContext{Trace: parent.Trace, Span: newSpanID()}
	var parentID SpanID
	if parent.Valid() {
		parentID = parent.Span
	} else {
		sc.Trace = newTraceID()
	}
	s := &Span{tracer: t, sc: sc, parent: parentID, name: name, start: time.Now(), attrs: attrs}
	return WithSpan(ctx, s), s
}

// StartChild begins a live span under an explicit parent context —
// the hand-off shape for work that outlives the goroutine (and span)
// that submitted it, like a queued job whose HTTP span ended at 202.
// An invalid parent yields a no-op span: work that was never traced
// stays untraced.
func (t *Tracer) StartChild(ctx context.Context, parent SpanContext, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil || !parent.Valid() {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		sc:     SpanContext{Trace: parent.Trace, Span: newSpanID()},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	return WithSpan(ctx, s), s
}

// Record stores an already-completed span under parent and returns its
// context, for post-hoc phases whose boundaries were measured by other
// means (a queue wait reconstructed from submit/start stamps). The
// zero SpanContext is returned — and nothing recorded — when the
// tracer is nil or parent is invalid.
func (t *Tracer) Record(parent SpanContext, name string, start, end time.Time, attrs ...Attr) SpanContext {
	if t == nil || !parent.Valid() {
		return SpanContext{}
	}
	sc := SpanContext{Trace: parent.Trace, Span: newSpanID()}
	t.finish(SpanData{
		TraceID:   sc.Trace.String(),
		SpanID:    sc.Span.String(),
		ParentID:  parent.Span.String(),
		Name:      name,
		Start:     start,
		End:       end,
		DurationS: end.Sub(start).Seconds(),
		Status:    StatusOK,
		Attrs:     attrs,
	})
	return sc
}

// finish delivers one completed span to the store and the mirror.
func (t *Tracer) finish(sd SpanData) {
	if t.store != nil {
		t.store.Add(sd)
	}
	t.mu.Lock()
	mirror, pid := t.mirror, t.mirrorPid
	t.mu.Unlock()
	if mirror != nil {
		args := map[string]any{"trace_id": sd.TraceID, "span_id": sd.SpanID, "status": sd.Status}
		for _, a := range sd.Attrs {
			args[a.Key] = a.Value
		}
		mirror.CompleteAt(pid, 0, sd.Name, "service", sd.Start, sd.End, args)
	}
}

// Tracer returns the span's tracer (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// Context returns the span's propagatable context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace id as hex ("" for nil) — the value
// access logs, response headers and exemplars carry.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.Trace.String()
}

// SetAttr attaches one key-value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	s.mu.Unlock()
}

// SetError marks the span failed with msg; the store's tail-biased
// retention pins errored traces.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed = true
	s.errMsg = msg
	s.mu.Unlock()
}

// End completes the span and delivers it. Idempotent: only the first
// End records.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	status, errMsg := StatusOK, ""
	if s.failed {
		status, errMsg = StatusError, s.errMsg
	}
	attrs := s.attrs
	s.mu.Unlock()
	var parentID string
	if !s.parent.IsZero() {
		parentID = s.parent.String()
	}
	s.tracer.finish(SpanData{
		TraceID:   s.sc.Trace.String(),
		SpanID:    s.sc.Span.String(),
		ParentID:  parentID,
		Name:      s.name,
		Start:     s.start,
		End:       end,
		DurationS: end.Sub(s.start).Seconds(),
		Status:    status,
		Error:     errMsg,
		Attrs:     attrs,
	})
}

// Child records an already-completed child of s — the post-completion
// recording shape the Runner uses for cell spans: the caller measures
// (it had to anyway), then reports, so the hot path never touches the
// tracer and the nil path allocates nothing.
func (s *Span) Child(name string, start, end time.Time, attrs ...Attr) SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.tracer.Record(s.sc, name, start, end, attrs...)
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// WithSpan returns ctx carrying s as the active span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the active span carried by ctx (nil if none). The
// lookup itself does not allocate, which is what keeps the disabled
// hot path free.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextFrom returns the active span's SpanContext (zero if none) —
// the capture shape for hand-offs across queue boundaries.
func ContextFrom(ctx context.Context) SpanContext {
	return SpanFrom(ctx).Context()
}

// Start begins a live child of the context's active span. With no
// active span it returns (ctx, nil): the whole call tree below an
// untraced entry point stays no-op without any plumbing.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	cctx, s := parent.tracer.StartChild(ctx, parent.sc, name, attrs...)
	return cctx, s
}

// Node is one span plus its children — the /traces/{id} tree shape.
type Node struct {
	SpanData
	Children []*Node `json:"children,omitempty"`
}

// BuildTree assembles completed spans into parent→child trees. Spans
// whose parent is absent (the root proper, spans continued from a
// remote traceparent, or children whose parent was dropped) become
// roots. Siblings sort by start time, then name, so the tree is
// deterministic for a given span set.
func BuildTree(spans []SpanData) []*Node {
	nodes := make(map[string]*Node, len(spans))
	for _, sd := range spans {
		nodes[sd.SpanID] = &Node{SpanData: sd}
	}
	var roots []*Node
	for _, sd := range spans {
		n := nodes[sd.SpanID]
		if p, ok := nodes[sd.ParentID]; ok && sd.ParentID != sd.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*Node)
	sortNodes = func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].Name < ns[j].Name
		})
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}
