// Package svclog is the service plane's structured logger: a thin
// log/slog configuration layer shared by `melody run`, `melody serve`
// and the packages behind them, plus the correlation-ID convention
// that lets one job be traced across every observability surface.
//
// The engine itself stays silent — simulated results never depend on
// logging, and the hot path records into obs instruments, not log
// lines. What logs is the *service* plane: HTTP requests, job
// lifecycle transitions, server startup and drain. Three attribute
// keys tie those lines to the other surfaces:
//
//	job_id     the jobs.Manager-assigned run id ("run-000042") — the
//	           same id appears in /runs/{id}, per-job SSE events, and
//	           every log line about that job
//	spec_hash  the RunSpec content address ("sha256:…") — joins log
//	           lines to manifests and the content-addressed run store
//	req_id     one HTTP exchange — generated (or honored from an
//	           incoming X-Request-Id header) by the serve middleware,
//	           echoed on the response, carried by the access log
//	trace_id   one distributed trace (see obs/tracespan) — honored from
//	           an incoming W3C traceparent header or minted per
//	           request, echoed as X-Trace-Id, the key into /traces and
//	           the /metrics exemplars
//
// Handlers are exactly slog's: "text" for humans at a terminal,
// "json" for anything that ships lines to a collector. Both write to
// one io.Writer (stderr in the CLI) so logs never interleave with
// report output on stdout.
package svclog

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Correlation attribute keys. Use these constants — not literals — so
// the fields stay greppable and the name-sync tests can pin them.
const (
	KeyJobID    = "job_id"
	KeySpecHash = "spec_hash"
	KeyReqID    = "req_id"
	KeyTraceID  = "trace_id"
)

// Options selects a handler. Zero values mean text format at info
// level.
type Options struct {
	// Format is "text" (default) or "json".
	Format string
	// Level is "debug", "info" (default), "warn" or "error".
	Level string
}

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("svclog: unknown level %q (valid levels: debug, info, warn, warning, error)", s)
}

// New builds a logger writing to w per opts. Unknown formats and
// levels are errors so a typoed flag fails at startup, not silently.
func New(w io.Writer, opts Options) (*slog.Logger, error) {
	level, err := ParseLevel(opts.Level)
	if err != nil {
		return nil, err
	}
	ho := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(opts.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, ho)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, ho)), nil
	}
	return nil, fmt.Errorf("svclog: unknown format %q (want text or json)", opts.Format)
}

// Discard returns a logger that drops everything. Packages that accept
// an optional *slog.Logger default to this so call sites need no nil
// guards (slog methods on a nil *Logger panic; on Discard they cost a
// level check and nothing else).
func Discard() *slog.Logger { return discard }

var discard = slog.New(discardHandler{})

// discardHandler is the stdlib slog.DiscardHandler, which arrives only
// in Go 1.24 — this module pins 1.22.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewReqID returns a fresh request correlation id: 16 hex characters,
// unique for any realistic request volume, short enough to read in a
// log line.
func NewReqID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a fixed id
		// keeps requests flowing and the failure debuggable.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the request id in a context.Context.
type ctxKey struct{}

// WithReqID returns ctx carrying id; handlers down the chain recover
// it with ReqID to stamp their own log lines and payloads.
func WithReqID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// ReqID returns the request id carried by ctx ("" if none).
func ReqID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
