package svclog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"Error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}

func TestParseLevelErrorListsValidLevels(t *testing.T) {
	// A typoed -log-level flag should teach the user the vocabulary,
	// aliases included, right in the error message.
	_, err := ParseLevel("loud")
	if err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
	for _, want := range []string{"loud", "debug", "info", "warn", "warning", "error"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("ParseLevel error %q does not mention %q", err, want)
		}
	}
}

func TestCorrelationKeys(t *testing.T) {
	// The key constants are the cross-surface contract: logs, span
	// attrs, /traces JSON and exemplar labels all grep by these names.
	keys := map[string]string{
		KeyJobID:    "job_id",
		KeySpecHash: "spec_hash",
		KeyReqID:    "req_id",
		KeyTraceID:  "trace_id",
	}
	for got, want := range keys {
		if got != want {
			t.Errorf("correlation key = %q, want %q", got, want)
		}
	}
}

func TestNewJSONLinesAreValidJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, Options{Format: "json", Level: "debug"})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("job queued", KeyJobID, "run-000001", KeySpecHash, "sha256:abc")
	log.Debug("access", KeyReqID, "deadbeefdeadbeef")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line not JSON: %v\n%s", err, lines[0])
	}
	if first["msg"] != "job queued" || first[KeyJobID] != "run-000001" || first[KeySpecHash] != "sha256:abc" {
		t.Fatalf("fields = %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["level"] != "DEBUG" || second[KeyReqID] != "deadbeefdeadbeef" {
		t.Fatalf("fields = %v", second)
	}
}

func TestNewTextRespectsLevel(t *testing.T) {
	var buf bytes.Buffer
	log, err := New(&buf, Options{Format: "text", Level: "warn"})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("suppressed")
	log.Warn("kept", KeyJobID, "run-000002")
	out := buf.String()
	if strings.Contains(out, "suppressed") {
		t.Fatalf("info line leaked past warn level:\n%s", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "job_id=run-000002") {
		t.Fatalf("warn line missing or unstructured:\n%s", out)
	}
}

func TestNewRejectsUnknownFormat(t *testing.T) {
	if _, err := New(&bytes.Buffer{}, Options{Format: "yaml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := New(&bytes.Buffer{}, Options{Level: "loud"}); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestDiscardIsSafeAndSilent(t *testing.T) {
	log := Discard()
	log.Info("nothing", "k", "v")
	log.With("a", 1).WithGroup("g").Error("still nothing")
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
}

func TestNewReqID(t *testing.T) {
	a, b := NewReqID(), NewReqID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("req ids %q/%q not 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two req ids collided: %q", a)
	}
}

func TestReqIDContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := ReqID(ctx); got != "" {
		t.Fatalf("empty context carried req id %q", got)
	}
	ctx = WithReqID(ctx, "abc123")
	if got := ReqID(ctx); got != "abc123" {
		t.Fatalf("ReqID = %q, want abc123", got)
	}
}
