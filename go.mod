module github.com/moatlab/melody

go 1.22
