// Quickstart: characterize one simulated CXL memory expander the way
// the paper does — idle latency, bandwidth across read/write mixes, and
// tail-latency stability — in a few lines against the public packages.
package main

import (
	"fmt"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/mlc"
	"github.com/moatlab/melody/internal/platform"
)

func main() {
	// Host a CXL-B-class expander on the Sapphire Rapids platform.
	host := platform.SPR2S()
	dev := host.CXLDevice(cxl.ProfileB(), 1)

	// Idle latency, as Intel MLC would measure it (the published number
	// includes the CPU-side cache-miss overhead).
	cfg := mlc.DefaultConfig()
	cfg.DurationNs = 200_000
	idle := host.CPU.MissOverheadNs + mlc.IdleLatency(dev, cfg)
	fmt.Printf("idle latency:  %.0f ns\n", idle)

	// Bandwidth across read:write mixes (Figure 5).
	for _, ratio := range mlc.RWRatios() {
		fmt.Printf("bandwidth %-4s %6.1f GB/s\n", ratio.Name, mlc.Bandwidth(dev, ratio.ReadFrac, cfg))
	}

	// Tail latency under a light pointer chase (Figure 3b): the paper's
	// key finding is that average latency hides instability.
	res := mio.Run(dev, mio.DefaultConfig())
	fmt.Printf("pointer chase: p50 %.0f ns, p99.9 %.0f ns (gap %.0f ns)\n",
		res.Percentile(50), res.Percentile(99.9), res.TailGap())
}
