// Spa-breakdown: dissect one workload's CXL slowdown into its sources
// (DRAM, cache levels, store buffer, core) using the paper's 9-counter
// differential analysis, then show how it evolves over execution
// periods (§5.4-5.6).
package main

import (
	"context"
	"fmt"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/workload"
)

func main() {
	melody.RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("602.gcc_s")

	run := melody.NewRunner(emr)
	run.SampleIntervalNs = 2_000 // time-based counter sampling

	ctx := context.Background()
	base, _ := run.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: melody.Local(emr)})
	tgt, _ := run.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: melody.CXL(emr, cxl.ProfileB())})

	b := spa.Analyze(base.Delta, tgt.Delta)
	fmt.Printf("%s on CXL-B: %s\n", spec.Name, b)
	fmt.Printf("estimators: ds %.1f%%  backend %.1f%%  memory %.1f%%  (actual %.1f%%)\n\n",
		b.EstTotal*100, b.EstBackend*100, b.EstMemory*100, b.Actual*100)

	fmt.Println("period-based breakdown (100k-instruction periods):")
	for _, p := range spa.AnalyzePeriods(base.Samples, tgt.Samples, 100_000) {
		bar := ""
		for i := 0.0; i < p.Actual*50; i++ {
			bar += "#"
		}
		fmt.Printf("  @%8d %6.1f%%  %s\n", p.StartInstr, p.Actual*100, bar)
	}
	fmt.Println("\ngcc's phase structure shows through: the heavy phases dominate the average")
}
