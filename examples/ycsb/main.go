// YCSB: run the Redis-like store under YCSB workloads A-F on local
// DRAM, NUMA, and CXL memory, reporting throughput slowdowns and
// request-latency tails — the paper's Figures 7c and 9b in miniature.
package main

import (
	"fmt"

	"github.com/moatlab/melody/internal/apps/kvstore"
	"github.com/moatlab/melody/internal/core"
	"github.com/moatlab/melody/internal/counters"
	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/stats"
)

func run(dev mem.Device, cpu platform.CPU, mix string) (cycles float64, lats []float64) {
	y := kvstore.NewYCSB("redis-ycsb-"+mix, kvstore.RedisConfig(), kvstore.YCSBMixes()[mix], 1)
	y.RecordOpLatency = true
	m := core.New(core.Config{CPU: cpu, Device: dev, MaxInstructions: 800_000})
	for _, obj := range y.PreloadObjects() {
		m.Preload(obj.Base, obj.Size)
	}
	y.Run(m)
	return m.Counters()[counters.Cycles], y.OpLatenciesNs
}

func main() {
	emr := platform.EMR2S()
	configs := []struct {
		name string
		dev  func() mem.Device
	}{
		{"Local", func() mem.Device { return emr.LocalDevice() }},
		{"NUMA", func() mem.Device { return emr.NUMADevice(1) }},
		{"CXL-A", func() mem.Device { return emr.CXLDevice(cxl.ProfileA(), 1) }},
		{"CXL-B", func() mem.Device { return emr.CXLDevice(cxl.ProfileB(), 1) }},
	}

	for _, mix := range []string{"A", "B", "C"} {
		fmt.Printf("YCSB-%s:\n", mix)
		var baseline float64
		for _, c := range configs {
			cycles, lats := run(c.dev(), emr.CPU, mix)
			if c.name == "Local" {
				baseline = cycles
			}
			slow := (cycles - baseline) / baseline * 100
			ps := stats.Percentiles(lats, 50, 99)
			fmt.Printf("  %-6s slowdown %6.1f%%   op latency p50 %6.2f us  p99 %6.2f us\n",
				c.name, slow, ps[0]/1000, ps[1]/1000)
		}
	}
}
