// Devicecompare: the paper's core device-characterization loop — run
// the MIO microbenchmark across local DRAM, NUMA, and all four CXL
// devices and contrast their latency stability (Figure 3b: "not all CXL
// devices are created equal").
package main

import (
	"fmt"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/platform"
)

func main() {
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()
	devices := []struct {
		name string
		dev  mem.Device
	}{
		{"Local", spr.LocalDevice()},
		{"NUMA", spr.NUMADevice(1)},
		{"CXL-A", spr.CXLDevice(cxl.ProfileA(), 1)},
		{"CXL-B", spr.CXLDevice(cxl.ProfileB(), 1)},
		{"CXL-C", spr.CXLDevice(cxl.ProfileC(), 1)},
		{"CXL-D", emrP.CXLDevice(cxl.ProfileD(), 1)},
	}

	fmt.Printf("%-7s %8s %8s %8s %10s %12s\n", "device", "p50", "p99", "p99.9", "p99.99", "p99.9-p50")
	for _, d := range devices {
		cfg := mio.DefaultConfig()
		cfg.ChaseThreads = 8
		res := mio.Run(d.dev, cfg)
		fmt.Printf("%-7s %7.0f  %7.0f  %7.0f  %9.0f  %11.0f\n",
			d.name, res.Percentile(50), res.Percentile(99),
			res.Percentile(99.9), res.Percentile(99.99), res.TailGap())
	}
	fmt.Println("\nlocal/NUMA stay stable; CXL devices diverge at the tail (paper Finding #1)")
}
