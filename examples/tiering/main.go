// Tiering: the paper's §5.7 performance-tuning use case. Run an
// mcf-like workload entirely on CXL, let Spa's per-object attribution
// find the latency-critical allocations, then pin those to local DRAM
// with a placement policy and measure the recovered performance.
package main

import (
	"context"
	"fmt"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/topology"
	"github.com/moatlab/melody/internal/workload"
)

func main() {
	melody.RegisterWorkloads()
	emr := platform.EMR2S()
	spec, _ := workload.ByName("605.mcf_s")
	run := melody.NewRunner(emr)
	ctx := context.Background()

	base, _ := run.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: melody.Local(emr)})
	onCXL, _ := run.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: melody.CXL(emr, cxl.ProfileA())})
	slow := (onCXL.Cycles() - base.Cycles()) / base.Cycles()
	fmt.Printf("everything on CXL-A: %.1f%% slowdown\n\n", slow*100)

	fmt.Println("Spa object attribution (CXL stalls by allocation):")
	advice := spa.Advise(onCXL.Regions)
	for _, a := range advice {
		fmt.Printf("  %-8s %5.1f%% of stalls\n", a.Name, a.StallShare*100)
	}
	hot := spa.TopObjects(advice, 0.55)
	fmt.Printf("\npinning %v to local DRAM...\n", hot)

	w := spec.Build(run.Seed).(*workload.Synthetic)
	local := emr.LocalDevice()
	var regions []topology.Region
	for _, name := range hot {
		if obj, ok := w.Arena().ByName(name); ok {
			regions = append(regions, topology.Region{Base: obj.Base, Size: obj.Size, Device: local})
		}
	}
	placed := melody.MemConfig{Name: "tiered", Build: func(seed uint64) mem.Device {
		dev, err := topology.NewPlacement("tiered", emr.CXLDevice(cxl.ProfileA(), seed), regions)
		if err != nil {
			panic(err)
		}
		return dev
	}}
	tiered, _ := run.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: placed})
	after := (tiered.Cycles() - base.Cycles()) / base.Cycles()
	fmt.Printf("with hot objects local: %.1f%% slowdown (was %.1f%%)\n", after*100, slow*100)
	fmt.Println("\npaper: the same workflow cut 605.mcf from 13% to 2%")
}
