// Command mio measures cacheline-level latency distributions on the
// simulated devices — the paper's custom microbenchmark for CXL tail
// latencies.
//
// Usage:
//
//	mio [-device NAME] [-threads N] [-noise read|rw] [-noisethreads N]
//	    [-prefetch] [-duration NS]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/platform"
)

func buildDevice(name string, seed uint64) (mem.Device, bool) {
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()
	switch name {
	case "Local":
		return spr.LocalDevice(), true
	case "NUMA":
		return spr.NUMADevice(seed), true
	case "CXL-D":
		return emrP.CXLDevice(cxl.ProfileD(), seed), true
	default:
		if prof, ok := cxl.ProfileByName(name); ok {
			return spr.CXLDevice(prof, seed), true
		}
	}
	return nil, false
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mio", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "CXL-B", "device: Local, NUMA, CXL-A..CXL-D")
	threads := fs.Int("threads", 1, "co-located pointer-chase threads")
	noise := fs.String("noise", "", "background noise: read or rw")
	noiseThreads := fs.Int("noisethreads", 4, "noise threads")
	prefetch := fs.Bool("prefetch", false, "strided chase with prefetching (Figure 6 mode)")
	duration := fs.Float64("duration", 400_000, "measurement duration (simulated ns)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dev, ok := buildDevice(*device, *seed)
	if !ok {
		fmt.Fprintf(stderr, "mio: unknown device %q\n", *device)
		return 1
	}

	if *prefetch {
		cfg := mio.DefaultPrefetchedConfig()
		cfg.Chasers = *threads
		cfg.Seed = *seed
		res := mio.RunPrefetched(dev, cfg)
		fmt.Fprintf(stdout, "%s (prefetched, %d chasers): %s\n", *device, *threads, res.Summary)
		return 0
	}

	cfg := mio.DefaultConfig()
	cfg.DurationNs = *duration
	cfg.ChaseThreads = *threads
	cfg.Seed = *seed
	switch *noise {
	case "read":
		cfg.Noise = mio.NoiseRead
		cfg.NoiseThreads = *noiseThreads
		cfg.NoiseDelayNs = 120
	case "rw":
		cfg.Noise = mio.NoiseReadWrite
		cfg.NoiseThreads = *noiseThreads
		cfg.NoiseDelayNs = 200
	case "":
	default:
		fmt.Fprintf(stderr, "mio: unknown noise %q\n", *noise)
		return 2
	}
	res := mio.Run(dev, cfg)
	fmt.Fprintf(stdout, "%s (%d chasers, noise=%q): %s\n", *device, *threads, *noise, res.Summary)
	fmt.Fprintf(stdout, "p99.9-p50 gap: %.0f ns, bandwidth %.1f GB/s\n", res.TailGap(), res.BandwidthGBs)
	return 0
}
