// Command mio measures cacheline-level latency distributions on the
// simulated devices — the paper's custom microbenchmark for CXL tail
// latencies.
//
// Usage:
//
//	mio [-device NAME] [-threads N] [-noise read|rw] [-noisethreads N]
//	    [-prefetch] [-duration NS]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mio"
	"github.com/moatlab/melody/internal/platform"
)

func buildDevice(name string, seed uint64) (mem.Device, bool) {
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()
	switch name {
	case "Local":
		return spr.LocalDevice(), true
	case "NUMA":
		return spr.NUMADevice(seed), true
	case "CXL-D":
		return emrP.CXLDevice(cxl.ProfileD(), seed), true
	default:
		if prof, ok := cxl.ProfileByName(name); ok {
			return spr.CXLDevice(prof, seed), true
		}
	}
	return nil, false
}

func main() {
	device := flag.String("device", "CXL-B", "device: Local, NUMA, CXL-A..CXL-D")
	threads := flag.Int("threads", 1, "co-located pointer-chase threads")
	noise := flag.String("noise", "", "background noise: read or rw")
	noiseThreads := flag.Int("noisethreads", 4, "noise threads")
	prefetch := flag.Bool("prefetch", false, "strided chase with prefetching (Figure 6 mode)")
	duration := flag.Float64("duration", 400_000, "measurement duration (simulated ns)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	dev, ok := buildDevice(*device, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "mio: unknown device %q\n", *device)
		os.Exit(1)
	}

	if *prefetch {
		cfg := mio.DefaultPrefetchedConfig()
		cfg.Chasers = *threads
		cfg.Seed = *seed
		res := mio.RunPrefetched(dev, cfg)
		fmt.Printf("%s (prefetched, %d chasers): %s\n", *device, *threads, res.Summary)
		return
	}

	cfg := mio.DefaultConfig()
	cfg.DurationNs = *duration
	cfg.ChaseThreads = *threads
	cfg.Seed = *seed
	switch *noise {
	case "read":
		cfg.Noise = mio.NoiseRead
		cfg.NoiseThreads = *noiseThreads
		cfg.NoiseDelayNs = 120
	case "rw":
		cfg.Noise = mio.NoiseReadWrite
		cfg.NoiseThreads = *noiseThreads
		cfg.NoiseDelayNs = 200
	case "":
	default:
		fmt.Fprintf(os.Stderr, "mio: unknown noise %q\n", *noise)
		os.Exit(2)
	}
	res := mio.Run(dev, cfg)
	fmt.Printf("%s (%d chasers, noise=%q): %s\n", *device, *threads, *noise, res.Summary)
	fmt.Printf("p99.9-p50 gap: %.0f ns, bandwidth %.1f GB/s\n", res.TailGap(), res.BandwidthGBs)
}
