package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-device", "bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown device: exit %d, want 1", code)
	}
	if code := run([]string{"-noise", "scream"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown noise: exit %d, want 2", code)
	}
}

func TestBuildDeviceNames(t *testing.T) {
	for _, name := range []string{"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"} {
		if _, ok := buildDevice(name, 1); !ok {
			t.Fatalf("device %q not recognized", name)
		}
	}
	if _, ok := buildDevice("DDR9", 1); ok {
		t.Fatal("bogus device accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-device", "CXL-B", "-duration", "20000"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "p99.9-p50 gap") {
		t.Fatalf("output missing tail-gap line:\n%s", out.String())
	}
}

func TestRunNoiseAndPrefetchEndToEnd(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-device", "CXL-A", "-duration", "20000", "-noise", "rw"}, &out, &errOut); code != 0 {
		t.Fatalf("noise run: exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `noise="rw"`) {
		t.Fatalf("noise run output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-device", "CXL-B", "-prefetch"}, &out, &errOut); code != 0 {
		t.Fatalf("prefetch run: exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "prefetched") {
		t.Fatalf("prefetch run output:\n%s", out.String())
	}
}
