// Command spa runs the Stall-based CXL performance analysis on one
// catalog workload: overall slowdown breakdown plus the period-based
// time series (paper §5).
//
// Usage:
//
//	spa -workload 605.mcf_s [-config CXL-A] [-platform EMR2S]
//	    [-instructions N] [-periods N]
//	spa -workload 605.mcf_s -explain [-sample-every N] [-csv FILE]
//	spa -workload 605.mcf_s -profile FILE
//	spa -list
//
// -explain drives the period analysis from the cycle-sampled streams
// (the "simulated perf" layer) instead of the coarse runner samples and
// prints a phase-resolved narrative: contiguous periods that share a
// dominant stall source are merged into phases, and each phase's added
// stalls are attributed to the CXL device's CPMU time split. -csv
// additionally exports the target run's sampled stream as CSV.
//
// -profile writes the target run's simulated-time pprof profile
// (stall-attributed sim_cycles/sim_ns over synthetic stacks) to FILE;
// inspect with `go tool pprof -top FILE`. Output paths are validated at
// flag-parse time so a typo fails before the simulation runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/sampler"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// parseConfig resolves a -config value against a platform: NUMA, a CXL
// profile name, or "<profile>+NUMA" for the interleaved placement.
func parseConfig(p platform.Platform, config string) (melody.MemConfig, bool) {
	if config == "NUMA" {
		return melody.NUMA(p), true
	}
	if prof, ok := cxl.ProfileByName(config); ok {
		return melody.CXL(p, prof), true
	}
	if len(config) > 5 && config[len(config)-5:] == "+NUMA" {
		if prof, ok := cxl.ProfileByName(config[:len(config)-5]); ok {
			return melody.CXLNUMA(p, prof), true
		}
	}
	return melody.MemConfig{}, false
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spa", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workload", "", "catalog workload name")
	config := fs.String("config", "CXL-A", "target config: NUMA, CXL-A..CXL-D, CXL-A+NUMA")
	plat := fs.String("platform", "EMR2S", "host platform")
	instructions := fs.Uint64("instructions", 1_200_000, "measurement window")
	periods := fs.Int("periods", 10, "instruction periods for the time series")
	explain := fs.Bool("explain", false, "emit the phase-resolved narrative from cycle-sampled streams")
	sampleEvery := fs.Uint64("sample-every", 0, "sampling cadence in simulated cycles (0 = auto with -explain)")
	csvPath := fs.String("csv", "", "write the target run's sampled stream as CSV to <file>")
	profilePath := fs.String("profile", "", "write the target run's simulated-time pprof profile to <file>")
	list := fs.Bool("list", false, "list catalog workloads")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, out := range []struct{ flag, path string }{
		{"-csv", *csvPath}, {"-profile", *profilePath},
	} {
		if out.path == "" {
			continue
		}
		if err := obs.EnsureWritableFile(out.path); err != nil {
			fmt.Fprintf(stderr, "spa: %s: %v\n", out.flag, err)
			return 2
		}
	}

	melody.RegisterWorkloads()
	if *list {
		for _, s := range workload.Catalog() {
			fmt.Fprintf(stdout, "  %-28s %-14s %s\n", s.Name, s.Suite, s.Class)
		}
		return 0
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "spa: unknown workload %q (use -list)\n", *name)
		return 1
	}
	p, ok := platform.PlatformByName(*plat)
	if !ok {
		fmt.Fprintf(stderr, "spa: unknown platform %q\n", *plat)
		return 1
	}
	target, ok := parseConfig(p, *config)
	if !ok {
		fmt.Fprintf(stderr, "spa: unknown config %q\n", *config)
		return 1
	}

	// -explain, -csv and -profile need the cycle-sampled streams;
	// default to a cadence fine enough for ~dozens of samples per period.
	every := *sampleEvery
	if every == 0 && (*explain || *csvPath != "" || *profilePath != "") {
		every = 4096
	}

	runner := melody.NewRunner(p)
	runner.Instructions = *instructions
	runner.SampleIntervalNs = 2_000
	runner.SampleEveryCycles = every

	ctx := context.Background()
	base, _ := runner.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: melody.Local(p)})
	tgt, _ := runner.RunCtx(ctx, melody.RunRequest{Spec: spec, Config: target})
	b := spa.Analyze(base.Delta, tgt.Delta)

	fmt.Fprintf(stdout, "%s on %s vs local DRAM (%s):\n", spec.Name, target.Name, p.CPU.Name)
	fmt.Fprintf(stdout, "  actual slowdown     %7.1f%%\n", b.Actual*100)
	fmt.Fprintf(stdout, "  ds estimate         %7.1f%%   backend %7.1f%%   memory %7.1f%%\n",
		b.EstTotal*100, b.EstBackend*100, b.EstMemory*100)
	fmt.Fprintf(stdout, "  breakdown: DRAM %6.1f%%  L3 %5.1f%%  L2 %5.1f%%  L1 %5.1f%%  store %5.1f%%  core %5.1f%%  other %5.1f%%\n",
		b.DRAM*100, b.L3*100, b.L2*100, b.L1*100, b.Store*100, b.Core*100, b.Other*100)

	if *periods > 0 {
		per := *instructions / uint64(*periods)
		series := spa.AnalyzePeriods(base.Samples, tgt.Samples, per)
		fmt.Fprintf(stdout, "period-based breakdown (%d instructions per period):\n", per)
		for _, pb := range series {
			fmt.Fprintf(stdout, "  @%10d  total %6.1f%%  DRAM %6.1f%%  cache %6.1f%%  store %6.1f%%\n",
				pb.StartInstr, pb.Actual*100, pb.DRAM*100, (pb.L1+pb.L2+pb.L3)*100, pb.Store*100)
		}
	}

	if *explain {
		per := *instructions / uint64(max(*periods, 1))
		periods := spa.AnalyzePeriods(
			sampler.CoreSamplesOf(base.Sampled),
			sampler.CoreSamplesOf(tgt.Sampled), per)
		rep := spa.NewReport(periods, per)
		rep.AttributeDevice(tgt.Sampled)
		fmt.Fprintf(stdout, "phase-resolved narrative (sampled every %d cycles):\n", every)
		rep.Narrative(stdout)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(stderr, "spa: csv:", err)
			return 1
		}
		if err := sampler.WriteCSV(f, tgt.Sampled); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "spa: csv:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "spa: csv:", err)
			return 1
		}
	}

	if *profilePath != "" {
		prof := melody.BuildProfile([]melody.SampledSeries{{
			Workload: spec.Name, Config: target.Name, Platform: p.CPU.Name,
			Samples: tgt.Sampled,
		}})
		f, err := os.Create(*profilePath)
		if err != nil {
			fmt.Fprintln(stderr, "spa: profile:", err)
			return 1
		}
		if err := prof.Write(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "spa: profile:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "spa: profile:", err)
			return 1
		}
	}
	return 0
}
