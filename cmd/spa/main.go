// Command spa runs the Stall-based CXL performance analysis on one
// catalog workload: overall slowdown breakdown plus the period-based
// time series (paper §5).
//
// Usage:
//
//	spa -workload 605.mcf_s [-config CXL-A] [-platform EMR2S]
//	    [-instructions N] [-periods N]
//	spa -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/platform"
	"github.com/moatlab/melody/internal/spa"
	"github.com/moatlab/melody/internal/workload"
)

func main() {
	name := flag.String("workload", "", "catalog workload name")
	config := flag.String("config", "CXL-A", "target config: NUMA, CXL-A..CXL-D, CXL-A+NUMA")
	plat := flag.String("platform", "EMR2S", "host platform")
	instructions := flag.Uint64("instructions", 1_200_000, "measurement window")
	periods := flag.Int("periods", 10, "instruction periods for the time series")
	list := flag.Bool("list", false, "list catalog workloads")
	flag.Parse()

	melody.RegisterWorkloads()
	if *list {
		for _, s := range workload.Catalog() {
			fmt.Printf("  %-28s %-14s %s\n", s.Name, s.Suite, s.Class)
		}
		return
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "spa: unknown workload %q (use -list)\n", *name)
		os.Exit(1)
	}
	p, ok := platform.PlatformByName(*plat)
	if !ok {
		fmt.Fprintf(os.Stderr, "spa: unknown platform %q\n", *plat)
		os.Exit(1)
	}

	var target melody.MemConfig
	switch *config {
	case "NUMA":
		target = melody.NUMA(p)
	default:
		if prof, okc := cxl.ProfileByName(*config); okc {
			target = melody.CXL(p, prof)
		} else if len(*config) > 5 && (*config)[len(*config)-5:] == "+NUMA" {
			if prof, okc := cxl.ProfileByName((*config)[:len(*config)-5]); okc {
				target = melody.CXLNUMA(p, prof)
			}
		}
	}
	if target.Build == nil {
		fmt.Fprintf(os.Stderr, "spa: unknown config %q\n", *config)
		os.Exit(1)
	}

	run := melody.NewRunner(p)
	run.Instructions = *instructions
	run.SampleIntervalNs = 2_000

	base := run.Run(spec, melody.Local(p))
	tgt := run.Run(spec, target)
	b := spa.Analyze(base.Delta, tgt.Delta)

	fmt.Printf("%s on %s vs local DRAM (%s):\n", spec.Name, target.Name, p.CPU.Name)
	fmt.Printf("  actual slowdown     %7.1f%%\n", b.Actual*100)
	fmt.Printf("  ds estimate         %7.1f%%   backend %7.1f%%   memory %7.1f%%\n",
		b.EstTotal*100, b.EstBackend*100, b.EstMemory*100)
	fmt.Printf("  breakdown: DRAM %6.1f%%  L3 %5.1f%%  L2 %5.1f%%  L1 %5.1f%%  store %5.1f%%  core %5.1f%%  other %5.1f%%\n",
		b.DRAM*100, b.L3*100, b.L2*100, b.L1*100, b.Store*100, b.Core*100, b.Other*100)

	if *periods > 0 {
		per := *instructions / uint64(*periods)
		series := spa.AnalyzePeriods(base.Samples, tgt.Samples, per)
		fmt.Printf("period-based breakdown (%d instructions per period):\n", per)
		for _, pb := range series {
			fmt.Printf("  @%10d  total %6.1f%%  DRAM %6.1f%%  cache %6.1f%%  store %6.1f%%\n",
				pb.StartInstr, pb.Actual*100, pb.DRAM*100, (pb.L1+pb.L2+pb.L3)*100, pb.Store*100)
		}
	}
}
