package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/platform"
)

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-workload", "no-such-workload"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown workload: exit %d, want 1", code)
	}
	if code := run([]string{"-workload", "605.mcf_s", "-config", "bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown config: exit %d, want 1", code)
	}
	if code := run([]string{"-workload", "605.mcf_s", "-platform", "bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown platform: exit %d, want 1", code)
	}
}

// TestRunBadOutputPaths: unwritable -csv/-profile destinations must
// fail at flag-parse time (exit 2), before any simulation runs.
func TestRunBadOutputPaths(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	under := filepath.Join(blocker, "out")
	for _, flag := range []string{"-csv", "-profile"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-workload", "605.mcf_s", flag, under}, &out, &errOut)
		if code != 2 {
			t.Fatalf("%s %s: exit %d, want 2 (fail fast)", flag, under, code)
		}
		if !strings.Contains(errOut.String(), flag) {
			t.Fatalf("%s error does not name the flag: %s", flag, errOut.String())
		}
	}
}

// TestRunProfileEndToEnd: -profile must write a gzipped pprof profile
// of the target run.
func TestRunProfileEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spa.pb.gz")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-workload", "micro-chase-256m", "-config", "CXL-B",
		"-instructions", "80000", "-periods", "0",
		"-profile", path,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("profile is not gzipped (leading bytes % x)", raw[:min(len(raw), 2)])
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "605.mcf_s") {
		t.Fatalf("-list output missing catalog entries:\n%s", out.String())
	}
}

func TestParseConfigVariants(t *testing.T) {
	p := platform.EMR2S()
	for _, name := range []string{"NUMA", "CXL-A", "CXL-D", "CXL-B+NUMA"} {
		if _, ok := parseConfig(p, name); !ok {
			t.Fatalf("config %q not recognized", name)
		}
	}
	for _, name := range []string{"", "bogus", "+NUMA", "bogus+NUMA"} {
		if _, ok := parseConfig(p, name); ok {
			t.Fatalf("config %q accepted", name)
		}
	}
}

// TestRunExplainEndToEnd is the tiny e2e: a short -explain run must
// emit the classic breakdown, the phase narrative, and the CSV export.
func TestRunExplainEndToEnd(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "stream.csv")
	var out, errOut bytes.Buffer
	code := run([]string{
		"-workload", "micro-chase-256m", "-config", "CXL-B",
		"-instructions", "80000", "-periods", "4",
		"-explain", "-csv", csv,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"actual slowdown",
		"period-based breakdown",
		"phase-resolved narrative",
		"instructions ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	raw, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(raw), "\n", 2)[0]
	for _, col := range []string{"time_ns", "cpmu_queue_depth"} {
		if !strings.Contains(head, col) {
			t.Fatalf("csv header missing %q: %s", col, head)
		}
	}
}
