package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-device", "bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown device: exit %d, want 1", code)
	}
	if code := run([]string{"-duration", "20000", "warp"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown mode: exit %d, want 2", code)
	}
}

func TestBuildDeviceNames(t *testing.T) {
	for _, name := range []string{"Local", "NUMA", "CXL-A", "CXL-B", "CXL-C", "CXL-D"} {
		if _, _, ok := buildDevice(name, 1); !ok {
			t.Fatalf("device %q not recognized", name)
		}
	}
	if _, _, ok := buildDevice("DDR9", 1); ok {
		t.Fatal("bogus device accepted")
	}
}

func TestRunModesEndToEnd(t *testing.T) {
	cases := []struct {
		mode string
		want string
	}{
		{"idle", "idle latency"},
		{"bandwidth", "read bandwidth"},
		{"loaded", "loaded latency"},
		{"matrix", "bandwidth R:W"},
	}
	for _, c := range cases {
		t.Run(c.mode, func(t *testing.T) {
			var out, errOut bytes.Buffer
			code := run([]string{"-device", "CXL-B", "-duration", "20000", c.mode}, &out, &errOut)
			if code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
			}
			if !strings.Contains(out.String(), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out.String())
			}
		})
	}
}
