// Command mlc is an Intel-MLC-style measurement tool for the simulated
// devices: idle latency, bandwidth, and loaded-latency sweeps.
//
// Usage:
//
//	mlc [-device NAME] [-duration NS] [idle|bandwidth|loaded|matrix]
//
// Devices: Local, NUMA, CXL-A, CXL-B, CXL-C, CXL-D (hosted per Table 1).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/moatlab/melody/internal/cxl"
	"github.com/moatlab/melody/internal/mem"
	"github.com/moatlab/melody/internal/mlc"
	"github.com/moatlab/melody/internal/platform"
)

func buildDevice(name string, seed uint64) (mem.Device, float64, bool) {
	spr := platform.SPR2S()
	emrP := platform.EMR2SPrime()
	switch name {
	case "Local":
		return spr.LocalDevice(), spr.CPU.MissOverheadNs, true
	case "NUMA":
		return spr.NUMADevice(seed), spr.CPU.MissOverheadNs, true
	case "CXL-D":
		return emrP.CXLDevice(cxl.ProfileD(), seed), emrP.CPU.MissOverheadNs, true
	default:
		if prof, ok := cxl.ProfileByName(name); ok {
			return spr.CXLDevice(prof, seed), spr.CPU.MissOverheadNs, true
		}
	}
	return nil, 0, false
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mlc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	device := fs.String("device", "Local", "device: Local, NUMA, CXL-A..CXL-D")
	duration := fs.Float64("duration", 200_000, "measurement duration (simulated ns)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	mode := "matrix"
	if fs.NArg() > 0 {
		mode = fs.Arg(0)
	}

	cfg := mlc.DefaultConfig()
	cfg.DurationNs = *duration
	cfg.Seed = *seed

	dev, overhead, ok := buildDevice(*device, *seed)
	if !ok {
		fmt.Fprintf(stderr, "mlc: unknown device %q\n", *device)
		return 1
	}

	switch mode {
	case "idle":
		fmt.Fprintf(stdout, "%s idle latency: %.0f ns\n", *device, overhead+mlc.IdleLatency(dev, cfg))
	case "bandwidth":
		fmt.Fprintf(stdout, "%s read bandwidth: %.1f GB/s\n", *device, mlc.Bandwidth(dev, 1.0, cfg))
	case "loaded":
		fmt.Fprintf(stdout, "%s loaded latency (read-only):\n", *device)
		for _, p := range mlc.LoadedLatency(dev, 1.0, mlc.StandardDelays(), cfg) {
			fmt.Fprintf(stdout, "  delay %6.0f ns: %7.1f GB/s  avg %7.0f ns\n",
				p.InjectDelayNs, p.BandwidthGBs, p.AvgLatencyNs+overhead)
		}
	case "matrix":
		fmt.Fprintf(stdout, "%s:\n", *device)
		fmt.Fprintf(stdout, "  idle latency  %8.0f ns\n", overhead+mlc.IdleLatency(dev, cfg))
		for _, ratio := range mlc.RWRatios() {
			fmt.Fprintf(stdout, "  bandwidth R:W %-4s %7.1f GB/s\n", ratio.Name, mlc.Bandwidth(dev, ratio.ReadFrac, cfg))
		}
	default:
		fmt.Fprintf(stderr, "mlc: unknown mode %q (idle|bandwidth|loaded|matrix)\n", mode)
		return 2
	}
	return 0
}
