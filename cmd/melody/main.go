// Command melody regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	melody list
//	melody run <experiment-id>... [flags]
//	melody run all [flags]
//	melody serve [-addr HOST:PORT] [-queue N] [-data-dir DIR] [-prof-interval D] [-pprof ADDR]
//
// `melody run` executes one spec and exits; `melody serve` is the
// long-lived experiment front door: it serves the observatory plus the
// job API (POST /runs accepts a RunSpec JSON body, GET /runs/{id}
// tracks it, GET /runs/{id}/manifest fetches the result) and executes
// queued specs FIFO through the same Execute path the CLI uses, so an
// API-submitted spec and the equivalent CLI invocation produce
// byte-identical manifests. SIGINT/SIGTERM drain: /readyz flips to 503,
// queued jobs are canceled, the in-flight job flushes its partial
// manifest with "interrupted": true, then the process exits.
//
// With -data-dir the service is durable: finished manifests land in a
// content-addressed ledger under <dir>/ledger, run history and cache
// hits survive restarts byte-identically, GET /compare?base=&head=
// diffs any two recorded runs (run ids or spec hashes), and baselines
// pinned via POST /baselines turn every completed run into an
// automatic regression check (melody_regressions_total on /metrics, a
// "regression" SSE event, and a structured warning in the log). The
// same flag on `melody run` records the CLI run into the same ledger,
// so CLI and API runs share one comparable history.
//
// Flags may appear before, between, or after experiment ids:
//
//	-workloads N      catalog subset size (0 = all 265; default 48)
//	-instructions N   measurement window per run (default 1200000)
//	-warmup N         warmup instructions per run (default 250000)
//	-duration NS      device-measurement duration in ns (default 200000)
//	-seed N           simulation seed (default 1)
//	-j N              parallel (workload, config) cells (0 = NumCPU)
//	-quiet            suppress live progress lines on stderr
//	-out DIR          also write each report to DIR/<id>.txt
//
// Observability flags (reports are byte-identical with or without them):
//
//	-metrics FILE     write the run manifest JSON: versions, seed,
//	                  per-experiment and per-cell wall times, and the
//	                  telemetry registry (cache outcomes, device latency
//	                  histograms with the CPMU-style breakdown)
//	-trace FILE       write Chrome trace-event JSON (experiment phases +
//	                  worker occupancy); open in https://ui.perfetto.dev
//	-sample-every N   sample CPU counters + CXL CPMU state every N
//	                  simulated cycles per cell; the streams land in the
//	                  -metrics manifest (timeseries) and as Perfetto
//	                  counter tracks in the -trace output
//	-profile DIR      write one simulated-time pprof profile per
//	                  experiment to DIR/<id>.pb.gz — stall-attributed
//	                  sim_cycles/sim_ns over synthetic stacks; implies
//	                  sampling (default cadence 20000 cycles). Inspect
//	                  with `go tool pprof -top DIR/<id>.pb.gz`
//	-pprof ADDR       serve net/http/pprof on ADDR (e.g. localhost:6060).
//	                  This profiles the simulator's *host* time; use
//	                  -profile for *simulated* time
//	-prof-interval D  continuous host profiling (requires -serve): capture
//	                  CPU/heap/goroutine/mutex/block profiles every D
//	                  (e.g. 30s) into a bounded in-memory store, queryable
//	                  at GET /profiles on the observatory and downloadable
//	                  per id as .pb.gz for `go tool pprof`. CPU samples
//	                  carry pprof labels (spec_hash, experiment), and the
//	                  anomaly watchdog fires tagged captures on goroutine
//	                  spikes, sustained heap growth, and GC-pause outliers
//	-serve ADDR       serve the live run observatory on ADDR:
//	                  GET /metrics   Prometheus text exposition of the
//	                                 telemetry registry (plus the
//	                                 observatory's own counters under a
//	                                 separate melody_observatory prefix)
//	                  GET /progress  JSON per-experiment done/total,
//	                                 cache hit rates, cell wall summary
//	                  GET /events    SSE stream of cell and experiment
//	                                 boundary events (bounded per-client
//	                                 queues; slow clients drop oldest)
//	                  GET /healthz   liveness probe
//
// Output paths are validated (and created) at flag-parse time so a
// typo fails before the simulation runs, not after.
//
// SIGINT/SIGTERM cancel the run gracefully: in-flight cells finish,
// no new cells start, and -metrics/-trace artifacts are still flushed
// with the manifest marked "interrupted": true (exit status 130).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs"
	"github.com/moatlab/melody/internal/obs/ledger"
	"github.com/moatlab/melody/internal/obs/serve"
	"github.com/moatlab/melody/internal/obs/svclog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range melody.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
	case "run":
		os.Exit(runCmd(os.Args[2:]))
	case "serve":
		os.Exit(serveCmd(os.Args[2:]))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: melody list | melody run <id>...|all [flags] | melody serve [flags]")
}

// parseRunArgs parses args against fs, allowing flags and positional
// experiment ids to interleave in any order (the standard flag package
// stops at the first positional, which used to make `melody run -j 8
// fig5` drop the ids after the flag — and `melody run fig5 -j 8` drop
// the flags after the id).
func parseRunArgs(fs *flag.FlagSet, args []string) ([]string, error) {
	var ids []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			return ids, nil
		}
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
}

func runCmd(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workloads := fs.Int("workloads", 48, "catalog subset size (0 = all 265)")
	instructions := fs.Uint64("instructions", 0, "measurement window per run")
	warmup := fs.Uint64("warmup", 0, "warmup instructions per run")
	duration := fs.Float64("duration", 0, "device measurement duration (ns)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	jobs := fs.Int("j", 0, "parallel (workload, config) cells (0 = NumCPU)")
	quiet := fs.Bool("quiet", false, "suppress live progress lines")
	outDir := fs.String("out", "", "also write each report to <dir>/<id>.txt")
	dataDir := fs.String("data-dir", "", "record the finished run in the durable ledger under <dir>/ledger")
	metricsPath := fs.String("metrics", "", "write the run-manifest/metrics JSON to <file>")
	tracePath := fs.String("trace", "", "write Chrome trace-event JSON (Perfetto) to <file>")
	sampleEvery := fs.Uint64("sample-every", 0, "sample counters + CPMU state every N simulated cycles (0 = off)")
	profileDir := fs.String("profile", "", "write per-experiment simulated-time pprof profiles to <dir>")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on <addr> (e.g. localhost:6060)")
	serveAddr := fs.String("serve", "", "serve the live observatory (/metrics /progress /events /healthz) on <addr>")
	profEvery := fs.Duration("prof-interval", 0, "continuous host profiling cadence (requires -serve; captures queryable at /profiles)")
	logLevel := fs.String("log-level", "warn", "structured log level on stderr: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")

	ids, err := parseRunArgs(fs, args)
	if err != nil {
		return 2
	}
	// The CLI defaults to warn so reports and live progress stay the
	// only routine output; -log-level info/debug opts into the run
	// lifecycle lines the service plane always emits.
	logger, err := svclog.New(os.Stderr, svclog.Options{Format: *logFormat, Level: *logLevel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "melody:", err)
		return 2
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "melody run: no experiments given (try `melody list`)")
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range melody.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	if err := validateOutputs(*metricsPath, *tracePath, *profileDir, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "melody:", err)
		return 2
	}

	// -data-dir opens the same durable ledger `melody serve -data-dir`
	// uses, before the simulation runs — a CLI run asked to be recorded
	// must fail now, not after a half-hour of simulation. The run itself
	// always executes (the ledger records results; it never answers the
	// CLI from cache — rerunning deliberately is the CLI's job).
	var led *ledger.Ledger
	if *dataDir != "" {
		var err error
		led, err = ledger.Open(filepath.Join(*dataDir, "ledger"), ledger.Options{Log: logger})
		if err != nil {
			fmt.Fprintln(os.Stderr, "melody:", err)
			return 2
		}
		defer led.Close()
	}
	if *profEvery != 0 && *serveAddr == "" {
		fmt.Fprintln(os.Stderr, "melody: -prof-interval requires -serve (captures are served at /profiles on the observatory)")
		return 2
	}
	if *profEvery < 0 {
		fmt.Fprintln(os.Stderr, "melody: -prof-interval must be positive")
		return 2
	}

	// The -pprof debug server profiles the simulator process itself
	// (host time). Listening is synchronous so a bad address fails now,
	// and the server closes after the run so no listener outlives it.
	// Both subcommands share this helper — the flag cannot drift again.
	if *pprofAddr != "" {
		pp, err := serve.StartDebugPprof(*pprofAddr, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "melody: pprof:", err)
			return 2
		}
		defer pp.Close()
		fmt.Fprintf(os.Stderr, "melody: pprof on http://%s/debug/pprof/\n", pp.Addr())
	}

	// -profile needs the cycle-sampled streams: force telemetry on and
	// default the cadence. Sampling never changes results.
	if *profileDir != "" && *sampleEvery == 0 {
		*sampleEvery = 20_000
	}

	// Flag parsing produces a RunSpec — the same versioned description
	// of the run the job API accepts — and Execute below is the same
	// entry point the job service calls, so CLI and API runs of one
	// spec are the same run.
	sp := spec.RunSpec{
		Version:           spec.Version,
		Experiments:       ids,
		Workloads:         *workloads,
		Instructions:      *instructions,
		Warmup:            *warmup,
		DurationNs:        *duration,
		SampleEveryCycles: *sampleEvery,
		Seed:              *seed,
		Workers:           *jobs,
		Output:            spec.Output{Reports: true},
	}
	if err := melody.VetSpec(sp); err != nil {
		fmt.Fprintln(os.Stderr, "melody:", err)
		return 1
	}

	// -data-dir records the run's manifest, so it needs telemetry on
	// exactly like -metrics does (the ledger stores the same bytes the
	// job service would).
	var tel *melody.Telemetry
	if *metricsPath != "" || *tracePath != "" || *profileDir != "" || *serveAddr != "" || *dataDir != "" {
		tel = melody.NewTelemetry()
		if *tracePath != "" {
			tel.Trace = obs.NewTrace()
		}
	}

	// The observatory serves live state over HTTP while the engine runs;
	// it reads observation-side snapshots only, so attaching it cannot
	// change results or the manifest.
	var obsv *observatory
	if *serveAddr != "" {
		obsv, err = startObservatory(*serveAddr, tel, ids, logger, *profEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "melody: serve:", err)
			return 2
		}
		defer obsv.close()
	}

	progressing := false
	clearProgress := func() {
		if progressing {
			fmt.Fprintf(os.Stderr, "\r%s\r", strings.Repeat(" ", 40))
			progressing = false
		}
	}
	var outErr error
	hooks := melody.ExecHooks{
		Telemetry: tel,
		Log:       logger,
		Progress: func(id string, done, total int) {
			obsv.cell(id, done, total)
			if !*quiet {
				fmt.Fprintf(os.Stderr, "\r%-8s %d/%d cells", id, done, total)
				progressing = true
			}
		},
		ExperimentStart: func(id, title string) { obsv.experimentStart(id, title) },
		ExperimentEnd: func(id string, wallS float64) {
			obsv.experimentEnd(id, wallS)
			clearProgress()
		},
		ReportDone: func(id string, rep *melody.Report, wallS float64) {
			fmt.Println(rep.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, wallS)
			if *outDir != "" && outErr == nil {
				if outErr = os.MkdirAll(*outDir, 0o755); outErr != nil {
					return
				}
				outErr = os.WriteFile(filepath.Join(*outDir, id+".txt"), []byte(rep.String()), 0o644)
			}
		},
	}

	// SIGINT/SIGTERM cancel the run context: the runner finishes cells
	// already executing but refuses to start new ones, and the artifact
	// flush below still happens — a partial manifest marked
	// "interrupted" beats no manifest after a half-hour run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	out, err := melody.Execute(ctx, sp, hooks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "melody:", err)
		return 1
	}
	if out.Interrupted {
		fmt.Fprintln(os.Stderr, "melody: interrupted; flushing partial artifacts")
	}
	obsv.finish(out.Interrupted)
	if outErr != nil {
		fmt.Fprintln(os.Stderr, "melody:", outErr)
		return 1
	}

	if *metricsPath != "" {
		if err := melody.WriteManifest(*metricsPath, *out.Manifest); err != nil {
			fmt.Fprintln(os.Stderr, "melody: metrics:", err)
			return 1
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, tel.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "melody: trace:", err)
			return 1
		}
	}
	if *profileDir != "" {
		if err := writeProfiles(*profileDir, tel); err != nil {
			fmt.Fprintln(os.Stderr, "melody: profile:", err)
			return 1
		}
	}
	// Record the completed run in the ledger — manifest bytes under
	// their content address, keyed by the canonical spec hash, exactly
	// as the job service stores API runs, so a later `melody serve
	// -data-dir` over the same directory answers this spec from cache
	// and can diff against it. Partial (interrupted) runs are never
	// recorded: a cache must not answer with half a result.
	if led != nil && !out.Interrupted {
		if err := recordRun(led, sp, out.Manifest); err != nil {
			fmt.Fprintln(os.Stderr, "melody: ledger:", err)
			return 1
		}
	}
	if out.Interrupted {
		return 130
	}
	return 0
}

// recordRun writes one finished manifest into the durable ledger under
// the same identities the job service uses (spec hash → manifest
// address), with "cli" in the job-id column so /runs provenance shows
// where the entry came from.
func recordRun(led *ledger.Ledger, sp spec.RunSpec, m *melody.Manifest) error {
	raw, err := melody.EncodeManifest(*m)
	if err != nil {
		return err
	}
	addr, err := m.Address()
	if err != nil {
		return err
	}
	hash, err := sp.Hash()
	if err != nil {
		return err
	}
	specJSON, err := spec.Encode(sp)
	if err != nil {
		return err
	}
	return led.Put(hash, addr, raw, specJSON, "cli")
}
