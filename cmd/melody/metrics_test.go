package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
)

// runSmallObserved executes one cheap experiment with full telemetry.
func runSmallObserved(t *testing.T) *melody.Telemetry {
	t.Helper()
	tel := melody.NewTelemetry()
	tel.Trace = obs.NewTrace()
	eng := melody.NewEngine(melody.Options{
		MaxWorkloads: 6, Instructions: 150_000, Warmup: 40_000, Seed: 1,
		SampleEveryCycles: 50_000,
	})
	eng.Workers = 2
	eng.Obs = tel
	if _, ok := eng.RunByID(context.Background(), "fig8f"); !ok {
		t.Fatal("fig8f not registered")
	}
	return tel
}

func TestWriteMetricsManifest(t *testing.T) {
	tel := runSmallObserved(t)
	exps := []melody.ExperimentTiming{{ID: "fig8f", WallS: 1.5}}
	m := melody.BuildManifest(42, 2, 6, exps, tel)

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := melody.WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	for _, key := range []string{"tool", "go_version", "os", "arch", "num_cpu",
		"seed", "workers", "workloads", "experiments", "cells", "timeseries", "registry"} {
		if _, ok := parsed[key]; !ok {
			t.Fatalf("manifest missing %q:\n%s", key, raw)
		}
	}
	if parsed["tool"] != "melody" || parsed["seed"].(float64) != 42 {
		t.Fatalf("manifest header wrong: tool=%v seed=%v", parsed["tool"], parsed["seed"])
	}
	cells := parsed["cells"].([]any)
	if len(cells) == 0 {
		t.Fatal("manifest has no cells")
	}
	reg := parsed["registry"].(map[string]any)
	counters := reg["counters"].(map[string]any)
	if counters["runner/cells_run"].(float64) != float64(len(cells)) {
		t.Fatalf("cells_run %v != %d cells", counters["runner/cells_run"], len(cells))
	}
	// The sampled run exports its time series.
	series := parsed["timeseries"].([]any)
	if len(series) == 0 {
		t.Fatal("sampled run exported no timeseries")
	}
	first := series[0].(map[string]any)
	if first["workload"] == "" || len(first["samples"].([]any)) == 0 {
		t.Fatalf("malformed timeseries entry: %v", first)
	}
}

func TestWriteMetricsEmptyRun(t *testing.T) {
	// A run that executed nothing still writes a valid manifest with
	// empty arrays, not nulls.
	m := melody.BuildManifest(1, 0, 0, nil, melody.NewTelemetry())
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := melody.WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Experiments []any `json:"experiments"`
		Cells       []any `json:"cells"`
		Timeseries  []any `json:"timeseries"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Experiments == nil || parsed.Cells == nil || parsed.Timeseries == nil {
		t.Fatalf("empty manifest uses null instead of []:\n%s", raw)
	}
}

func TestWriteTraceIsValidChromeTrace(t *testing.T) {
	tel := runSmallObserved(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := writeTrace(path, tel.Trace); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	sawCounter := false
	for i, e := range f.TraceEvents {
		if e.Name == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d malformed", i)
		}
		switch e.Ph {
		case "X", "i", "M":
		case "C":
			sawCounter = true
			if _, ok := e.Args["value"].(float64); !ok {
				t.Fatalf("counter event %d (%s) has no numeric value", i, e.Name)
			}
		default:
			t.Fatalf("event %d has phase %q", i, e.Ph)
		}
	}
	if !sawCounter {
		t.Fatal("sampled run emitted no counter-track events")
	}
}
