package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/moatlab/melody/internal/melody"
)

func TestValidateOutputsCreatesDestinations(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m", "metrics.json")
	trace := filepath.Join(dir, "t", "trace.json")
	profiles := filepath.Join(dir, "profiles")
	out := filepath.Join(dir, "reports")
	if err := validateOutputs(metrics, trace, profiles, out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{metrics, trace} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("file flag destination not created: %v", err)
		}
	}
	for _, d := range []string{profiles, out} {
		st, err := os.Stat(d)
		if err != nil || !st.IsDir() {
			t.Fatalf("dir flag destination not created: %v", err)
		}
	}
}

func TestValidateOutputsSkipsEmpty(t *testing.T) {
	if err := validateOutputs("", "", "", ""); err != nil {
		t.Fatalf("all-empty flags rejected: %v", err)
	}
}

func TestValidateOutputsFailFast(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	under := filepath.Join(blocker, "x")
	cases := []struct {
		name                              string
		metrics, trace, profiles, reports string
	}{
		{"metrics under file", under, "", "", ""},
		{"trace under file", "", under, "", ""},
		{"profile dir is file", "", "", blocker, ""},
		{"out dir is file", "", "", "", blocker},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := validateOutputs(c.metrics, c.trace, c.profiles, c.reports); err == nil {
				t.Fatal("unwritable destination accepted")
			}
		})
	}
}

func TestWriteProfilesEmptyTelemetry(t *testing.T) {
	if err := writeProfiles(t.TempDir(), melody.NewTelemetry()); err == nil {
		t.Fatal("no sampled streams must be an error, not a silent no-op")
	}
}
