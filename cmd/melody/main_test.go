package main

import (
	"flag"
	"io"
	"reflect"
	"testing"
)

// newRunFlags mirrors runCmd's flag set for parser tests.
func newRunFlags() (*flag.FlagSet, *int, *int) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workloads := fs.Int("workloads", 48, "")
	jobs := fs.Int("j", 0, "")
	fs.Uint64("seed", 1, "")
	fs.Bool("quiet", false, "")
	return fs, workloads, jobs
}

func TestParseRunArgsInterleaved(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		ids       []string
		workloads int
		jobs      int
	}{
		{"flags first", []string{"-j", "8", "-workloads", "16", "fig8a", "fig11"},
			[]string{"fig8a", "fig11"}, 16, 8},
		{"flags last", []string{"fig8a", "fig11", "-j", "8", "-workloads", "16"},
			[]string{"fig8a", "fig11"}, 16, 8},
		{"flags between", []string{"fig8a", "-j", "8", "fig11", "-workloads", "16", "tuning"},
			[]string{"fig8a", "fig11", "tuning"}, 16, 8},
		{"ids only", []string{"fig5"}, []string{"fig5"}, 48, 0},
		{"all with trailing flag", []string{"all", "-quiet"}, []string{"all"}, 48, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs, workloads, jobs := newRunFlags()
			ids, err := parseRunArgs(fs, c.args)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids, c.ids) {
				t.Fatalf("ids = %v, want %v", ids, c.ids)
			}
			if *workloads != c.workloads || *jobs != c.jobs {
				t.Fatalf("workloads=%d jobs=%d, want %d/%d", *workloads, *jobs, c.workloads, c.jobs)
			}
		})
	}
}

func TestParseRunArgsBadFlag(t *testing.T) {
	fs, _, _ := newRunFlags()
	if _, err := parseRunArgs(fs, []string{"fig8a", "-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
