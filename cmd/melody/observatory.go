package main

// -serve wiring: the observatory runs an HTTP server concurrently with
// the engine, fed entirely from observation-side state (the telemetry
// registry, a RunStatus board, an event hub). Nothing here has a
// channel back into the engine, which is how the manifest stays
// byte-identical with and without -serve — pinned by
// TestServeDoesNotPerturbManifest.

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"time"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs/hostprof"
	"github.com/moatlab/melody/internal/obs/serve"
)

// observatory bundles the run's live-view state. A nil *observatory is
// a no-op on every method, so the engine loop calls it unconditionally.
type observatory struct {
	status   *melody.RunStatus
	hub      *serve.Hub
	run      *serve.Running
	start    time.Time
	stopProf context.CancelFunc
	profDone chan struct{}
}

// startObservatory declares the run plan on a fresh status board and
// starts the observatory server on addr. Listen errors surface
// synchronously — a bad -serve address fails before the run starts.
// log receives the server's access/panic/listener lines (nil = silent).
// profEvery > 0 attaches the continuous host profiler at that cadence:
// captures land in an in-memory store queryable at /profiles, recorded
// against the observatory self-registry so the engine registry — and
// therefore the manifest — never sees the profiler.
func startObservatory(addr string, tel *melody.Telemetry, ids []string, log *slog.Logger, profEvery time.Duration) (*observatory, error) {
	status := melody.NewRunStatus(tel)
	titles := make([]string, len(ids))
	for i, id := range ids {
		if e, ok := melody.ExperimentByID(id); ok {
			titles[i] = e.Title
		}
	}
	status.Declare(ids, titles)

	srv := serve.New(tel.Registry, func() any { return status.Snapshot() })
	srv.SetLogger(log)
	if tel.Trace != nil {
		// Mirror completed request/queue/exec spans onto the run's
		// Perfetto trace: service spans render as their own process row
		// beside the engine (pid 1) and worker (pid 2) tracks.
		srv.Tracer().SetMirror(tel.Trace, 3)
	}
	var prof *hostprof.Profiler
	if profEvery > 0 {
		prof = hostprof.New(hostprof.Config{
			Interval: profEvery,
			Registry: srv.SelfRegistry(),
			Log:      log,
		})
		srv.AttachProfiler(prof)
	}
	run, err := srv.Start(addr)
	if err != nil {
		return nil, err
	}
	o := &observatory{status: status, hub: srv.Hub(), run: run, start: time.Now()}
	if prof != nil {
		ctx, cancel := context.WithCancel(context.Background())
		o.stopProf = cancel
		o.profDone = make(chan struct{})
		go func() { prof.Run(ctx); close(o.profDone) }()
	}
	fmt.Fprintf(os.Stderr, "melody: observatory on http://%s/ (/metrics /progress /events /healthz)\n", run.Addr())
	return o, nil
}

// atMs stamps an event with host milliseconds since the run began.
func (o *observatory) atMs() int64 { return time.Since(o.start).Milliseconds() }

// experimentStart marks id running and publishes the boundary event.
func (o *observatory) experimentStart(id, title string) {
	if o == nil {
		return
	}
	o.status.BeginExperiment(id, title)
	o.hub.Publish(serve.Event{Type: serve.EventExperimentStart, AtMs: o.atMs(), Experiment: id, Title: title})
}

// cell records batch progress and publishes a cell event.
func (o *observatory) cell(id string, done, total int) {
	if o == nil {
		return
	}
	o.status.CellDone(id, done, total)
	o.hub.Publish(serve.Event{Type: serve.EventCell, AtMs: o.atMs(), Experiment: id, Done: done, Total: total})
}

// experimentEnd marks id done with its wall time.
func (o *observatory) experimentEnd(id string, wallS float64) {
	if o == nil {
		return
	}
	o.status.EndExperiment(id, wallS)
	o.hub.Publish(serve.Event{Type: serve.EventExperimentEnd, AtMs: o.atMs(), Experiment: id, WallS: wallS})
}

// finish marks the run complete (or interrupted) and publishes the
// final event; /progress keeps serving the terminal snapshot until
// close, so a dashboard sees the run end rather than a dropped socket.
func (o *observatory) finish(interrupted bool) {
	if o == nil {
		return
	}
	o.status.Finish(interrupted)
	o.hub.Publish(serve.Event{Type: serve.EventRunEnd, AtMs: o.atMs(), Interrupted: interrupted})
}

// close stops the profiler loop (waiting for an in-flight capture
// window to drain) and shuts the HTTP server down.
func (o *observatory) close() {
	if o == nil {
		return
	}
	if o.stopProf != nil {
		o.stopProf()
		<-o.profDone
	}
	if o.run != nil {
		o.run.Close()
	}
}
