package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs/serve"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// lockedBuffer collects log output safely across the server goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// runObserved executes one cheap experiment with telemetry and an
// optional observatory attached, returning the stripped manifest bytes.
// The observed pass runs with debug-level JSON logging and the RED
// middleware active — the isolation contract covers them too.
func runObserved(t *testing.T, withServe bool) []byte {
	t.Helper()
	tel := melody.NewTelemetry()
	eng := melody.NewEngine(melody.Options{
		MaxWorkloads: 6, Instructions: 150_000, Warmup: 40_000, Seed: 1,
		SampleEveryCycles: 50_000,
	})
	eng.Workers = 2
	eng.Obs = tel

	var obsv *observatory
	var logBuf *lockedBuffer
	if withServe {
		logBuf = &lockedBuffer{}
		logger, err := svclog.New(logBuf, svclog.Options{Format: "json", Level: "debug"})
		if err != nil {
			t.Fatal(err)
		}
		obsv, err = startObservatory("127.0.0.1:0", tel, []string{"fig8f"}, logger, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer obsv.close()
		eng.Progress = func(id string, done, total int) { obsv.cell(id, done, total) }
	}

	obsv.experimentStart("fig8f", "")
	if _, ok := eng.RunByID(context.Background(), "fig8f"); !ok {
		t.Fatal("fig8f not registered")
	}
	obsv.experimentEnd("fig8f", 1)
	obsv.finish(false)

	if withServe {
		// Scrape every endpoint mid-lifetime to prove reads are inert.
		base := "http://" + obsv.run.Addr().String()
		for _, ep := range []string{"/metrics", "/progress", "/healthz"} {
			resp, err := http.Get(base + ep)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s = %d", ep, resp.StatusCode)
			}
		}
		// The scrapes really went through the logging middleware: the
		// access log saw them (so byte-identity below is a real test of
		// logging + middleware, not of an idle code path).
		if !strings.Contains(logBuf.String(), "http request") {
			t.Fatalf("access log empty after scrapes:\n%s", logBuf.String())
		}
	}

	m := melody.BuildManifest(1, 2, 6, []melody.ExperimentTiming{{ID: "fig8f", WallS: 2}}, tel)
	m.StripHostTime()
	raw, err := melody.EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestServeDoesNotPerturbManifest is the -serve isolation contract:
// under the StripHostTime projection (host wall times are the only
// nondeterministic manifest fields), a run with the observatory
// attached and scraped produces byte-identical -metrics output to a
// run without it.
func TestServeDoesNotPerturbManifest(t *testing.T) {
	without := runObserved(t, false)
	with := runObserved(t, true)
	if !bytes.Equal(without, with) {
		i := 0
		for i < len(without) && i < len(with) && without[i] == with[i] {
			i++
		}
		lo := max(0, i-200)
		t.Fatalf("manifest differs with -serve attached at byte %d:\n--- without ---\n…%s\n--- with ---\n…%s",
			i, without[lo:min(len(without), i+200)], with[lo:min(len(with), i+200)])
	}
	// And nothing from the observatory leaked into the registry dump.
	if bytes.Contains(with, []byte(`"serve/`)) {
		t.Fatal("observatory self-metrics leaked into the manifest")
	}
}

// TestObservatoryLiveEndpoints drives a run with the observatory up and
// checks the live payloads: progress reflects the declared plan, events
// stream boundary markers, /metrics carries both namespaces.
func TestObservatoryLiveEndpoints(t *testing.T) {
	tel := melody.NewTelemetry()
	obsv, err := startObservatory("127.0.0.1:0", tel, []string{"fig8f"}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer obsv.close()
	base := "http://" + obsv.run.Addr().String()

	// Subscribe to /events before generating any.
	evReq, _ := http.NewRequest("GET", base+"/events", nil)
	evCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evResp, err := http.DefaultClient.Do(evReq.WithContext(evCtx))
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()

	eng := melody.NewEngine(melody.Options{
		MaxWorkloads: 4, Instructions: 120_000, Warmup: 30_000, Seed: 1,
	})
	eng.Workers = 2
	eng.Obs = tel
	eng.Progress = func(id string, done, total int) { obsv.cell(id, done, total) }

	obsv.experimentStart("fig8f", "Sensitivity")
	if _, ok := eng.RunByID(context.Background(), "fig8f"); !ok {
		t.Fatal("fig8f not registered")
	}
	obsv.experimentEnd("fig8f", 0.5)
	obsv.finish(false)

	var prog melody.ProgressSnapshot
	resp, err := http.Get(base + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !prog.Done || len(prog.Experiments) != 1 || prog.Experiments[0].State != "done" {
		t.Fatalf("progress = %+v", prog)
	}
	if prog.CellsRun == 0 || prog.Experiments[0].Done != prog.Experiments[0].Total {
		t.Fatalf("progress cells = %+v", prog)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{"melody_runner_cells_run_total", "melody_observatory_serve_metrics_scrapes_total", "melody_observatory_serve_events_published_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%.1500s", want, body)
		}
	}

	// The SSE stream carried the lifecycle: experiment_start, at least
	// one cell, experiment_end, run_end.
	seen := map[string]bool{}
	sc := bufio.NewScanner(evResp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		seen[ev.Type] = true
		if ev.Type == serve.EventRunEnd {
			break
		}
	}
	for _, want := range []string{serve.EventExperimentStart, serve.EventCell, serve.EventExperimentEnd, serve.EventRunEnd} {
		if !seen[want] {
			t.Fatalf("SSE stream missing %s events (saw %v)", want, seen)
		}
	}
}

// TestRunCmdInterruptFlushesManifest cancels a run via SIGINT mid-way
// and checks that the manifest still lands, marked interrupted.
func TestRunCmdInterruptFlushesManifest(t *testing.T) {
	// Exercise the wiring directly (signal.NotifyContext is process-
	// global; raising a real SIGINT would kill the test runner's other
	// goroutines' expectations). Cancelled context + flush is the same
	// code path runCmd takes.
	tel := melody.NewTelemetry()
	eng := melody.NewEngine(melody.Options{
		MaxWorkloads: 4, Instructions: 120_000, Warmup: 30_000, Seed: 1,
	})
	eng.Workers = 2
	eng.Obs = tel

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before the experiment starts
	if _, ok := eng.RunByID(ctx, "fig8f"); !ok {
		t.Fatal("fig8f not registered")
	}

	m := melody.BuildManifest(1, 2, 4, nil, tel)
	m.Interrupted = true
	raw, err := melody.EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"interrupted": true`)) {
		t.Fatalf("interrupted manifest missing flag:\n%.500s", raw)
	}
	// The cancelled run computed no cells but the manifest is complete.
	var parsed struct {
		Cells []any `json:"cells"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Cells == nil {
		t.Fatal("interrupted manifest has null cells")
	}
}

// TestObservatoryWithProfiler pins the -prof-interval wiring: an
// observatory started with a profiling cadence serves /profiles with
// captures in it, records profiler instruments under the observatory
// namespace only, and close() stops the capture loop cleanly.
func TestObservatoryWithProfiler(t *testing.T) {
	tel := melody.NewTelemetry()
	obsv, err := startObservatory("127.0.0.1:0", tel, []string{"fig8f"}, nil, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer obsv.close()
	base := "http://" + obsv.run.Addr().String()

	// The profiler's initial round runs at startup; poll briefly for the
	// instant captures (heap/goroutine land before the CPU window ends).
	var listing struct {
		Profiles []json.RawMessage `json:"profiles"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/profiles")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /profiles = %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatalf("decode /profiles: %v\n%s", err, body)
		}
		if len(listing.Profiles) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(listing.Profiles) == 0 {
		t.Fatal("no captures after startup round")
	}

	// Profiler instruments live in the observatory namespace, never the
	// engine registry (where they would leak into the manifest).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "melody_observatory_hostprof_captures_total") {
		t.Fatal("/metrics missing hostprof instruments")
	}
	snap := tel.Registry.Snapshot()
	for _, m := range []map[string]struct{}{keys(snap.Counters), keys(snap.Gauges), keys(snap.Histograms)} {
		for name := range m {
			if strings.HasPrefix(name, "hostprof/") {
				t.Fatalf("profiler instrument %q leaked into the engine registry", name)
			}
		}
	}
}

// keys projects a map's key set (the engine-registry snapshot has three
// differently-typed instrument maps).
func keys[V any](m map[string]V) map[string]struct{} {
	out := make(map[string]struct{}, len(m))
	for k := range m {
		out[k] = struct{}{}
	}
	return out
}
