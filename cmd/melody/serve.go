package main

// `melody serve` wiring: the long-lived job service. The observatory
// server grows the job API (POST /runs and friends, see internal/jobs
// and internal/obs/serve); specs execute FIFO through the same
// melody.Execute the CLI uses, each on its own Engine with its own
// Telemetry, so a job's manifest is byte-identical to the manifest the
// equivalent `melody run` invocation writes. /metrics exposes only the
// observatory's self-registry here — per-job engine registries live in
// the jobs' manifests, never merged across jobs.

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/hostprof"
	"github.com/moatlab/melody/internal/obs/ledger"
	"github.com/moatlab/melody/internal/obs/serve"
	"github.com/moatlab/melody/internal/obs/svclog"
)

// jobExecutor bridges the job manager onto melody.Execute: fresh
// telemetry per job, experiment-level progress forwarded as job
// events, and a status board for /progress published through cur.
// A canceled ctx yields a partial result with Interrupted set — the
// manager serves it but never caches it. Execute's lifecycle lines go
// through log pre-bound with the job id (recovered from the manager's
// context) so one job is traceable from POST to manifest.
func jobExecutor(cur *atomic.Pointer[melody.RunStatus], log *slog.Logger) jobs.Executor {
	if log == nil {
		log = svclog.Discard()
	}
	return func(ctx context.Context, sp spec.RunSpec, notify func(jobs.Event)) (jobs.ExecResult, error) {
		jlog := log
		if id := jobs.JobIDFrom(ctx); id != "" {
			jlog = jlog.With(svclog.KeyJobID, id)
		}
		tel := melody.NewTelemetry()
		status := melody.NewRunStatus(tel)
		titles := make([]string, len(sp.Experiments))
		for i, id := range sp.Experiments {
			if e, ok := melody.ExperimentByID(id); ok {
				titles[i] = e.Title
			}
		}
		status.Declare(sp.Experiments, titles)
		cur.Store(status)

		out, err := melody.Execute(ctx, sp, melody.ExecHooks{
			Telemetry: tel,
			Log:       jlog,
			Progress: func(id string, done, total int) {
				status.CellDone(id, done, total)
				notify(jobs.Event{Type: jobs.EventCell, Experiment: id, Done: done, Total: total})
			},
			ExperimentStart: func(id, title string) {
				status.BeginExperiment(id, title)
				notify(jobs.Event{Type: jobs.EventExperimentStart, Experiment: id, Title: title})
			},
			ExperimentEnd: func(id string, wallS float64) {
				status.EndExperiment(id, wallS)
				notify(jobs.Event{Type: jobs.EventExperimentEnd, Experiment: id, WallS: wallS})
			},
		})
		if err != nil {
			return jobs.ExecResult{}, err
		}
		status.Finish(out.Interrupted)
		raw, err := melody.EncodeManifest(*out.Manifest)
		if err != nil {
			return jobs.ExecResult{}, err
		}
		addr, err := out.Manifest.Address()
		if err != nil {
			return jobs.ExecResult{}, err
		}
		return jobs.ExecResult{ManifestJSON: raw, Address: addr, Interrupted: out.Interrupted}, nil
	}
}

// serveCmd implements `melody serve`.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address for the observatory + job API")
	queueCap := fs.Int("queue", jobs.DefaultQueueCap, "pending-run queue bound (full queue answers 429)")
	dataDir := fs.String("data-dir", "", "durable run ledger root (empty = in-memory history only; restarts forget runs)")
	logLevel := fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on <addr> (e.g. localhost:6060)")
	profEvery := fs.Duration("prof-interval", 0, "continuous host profiling cadence (0 = off; captures queryable at /profiles)")
	debugPprof := fs.Bool("debug-pprof", false, "mount /debug/pprof/* on the observatory itself")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "melody serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *profEvery < 0 {
		fmt.Fprintln(os.Stderr, "melody serve: -prof-interval must be positive")
		return 2
	}
	// The service plane logs at info by default — queue transitions,
	// access lines and drains are the operational record; -log-format
	// json feeds log pipelines (every line one JSON object on stderr).
	logger, err := svclog.New(os.Stderr, svclog.Options{Format: *logFormat, Level: *logLevel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "melody serve:", err)
		return 2
	}

	melody.RegisterWorkloads()

	// /progress tracks the job currently executing (the worker is
	// serial, so there is at most one).
	var cur atomic.Pointer[melody.RunStatus]

	mgr := jobs.New(jobExecutor(&cur, logger), *queueCap)
	mgr.Vet = melody.VetSpec
	mgr.Log = logger

	srv := serve.New(nil, func() any {
		if st := cur.Load(); st != nil {
			return st.Snapshot()
		}
		return struct{}{}
	})
	srv.SetLogger(logger)
	srv.AttachJobs(mgr)
	srv.DebugPprof = *debugPprof

	// -data-dir makes run history durable: completed manifests land in a
	// content-addressed ledger under <dir>/ledger, prior entries are
	// restored into the manager as finished jobs (so /runs, manifest
	// fetches and cache hits survive restarts byte-identically), and the
	// /compare + /baselines endpoints get their backing store. Opening
	// fails fast — a service asked to be durable must not silently run
	// volatile.
	if *dataDir != "" {
		led, err := ledger.Open(filepath.Join(*dataDir, "ledger"), ledger.Options{
			Registry: srv.SelfRegistry(),
			Log:      logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "melody serve:", err)
			return 2
		}
		defer led.Close()
		mgr.SetStore(led)
		restored := 0
		for _, e := range led.Entries() {
			if err := mgr.RestoreJob(e.SpecHash, e.Address, e.SpecJSON, e.StoredAt); err != nil {
				logger.Warn("ledger entry not restorable", svclog.KeySpecHash, e.SpecHash, "err", err)
				continue
			}
			restored++
		}
		srv.AttachLedger(led)
		logger.Info("run ledger open",
			"dir", filepath.Join(*dataDir, "ledger"),
			"restored", restored,
			"baselines", len(led.Baselines()),
		)
	}

	// The same -pprof the run subcommand takes: a standalone net/http/pprof
	// listener, failing fast on a bad address before any job is accepted.
	if *pprofAddr != "" {
		pp, err := serve.StartDebugPprof(*pprofAddr, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "melody serve:", err)
			return 2
		}
		defer pp.Close()
	}

	// -prof-interval attaches the continuous host profiler: interval and
	// job-start captures of the service process, stamped with the job ids
	// running during each window, queryable at /profiles. Instruments go
	// to the self-registry; per-job engine registries never see them, so
	// profiling cannot perturb any job's manifest.
	var prof *hostprof.Profiler
	if *profEvery > 0 {
		prof = hostprof.New(hostprof.Config{
			Interval:   *profEvery,
			Registry:   srv.SelfRegistry(),
			Log:        logger,
			ActiveJobs: mgr.RunningJobs,
		})
		srv.AttachProfiler(prof)
	}

	run, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "melody serve:", err)
		return 2
	}
	defer run.Close()
	logger.Info("job service ready",
		"url", "http://"+run.Addr().String()+"/",
		"queue_cap", mgr.QueueCap(),
	)

	// SIGINT/SIGTERM start the drain: admission stops (/readyz goes
	// 503), queued jobs are canceled, and the in-flight job finishes
	// gracefully — its executor sees the canceled context and flushes a
	// partial manifest marked "interrupted": true. Run returns once the
	// drain completes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var profDone chan struct{}
	if prof != nil {
		profDone = make(chan struct{})
		go func() { prof.Run(ctx); close(profDone) }()
	}
	mgr.Run(ctx)
	if profDone != nil {
		<-profDone
	}
	logger.Info("job service drained, shutting down")
	return 0
}
