package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"github.com/moatlab/melody/internal/jobs"
	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/melody/spec"
	"github.com/moatlab/melody/internal/obs/serve"
)

// paritySpec is a cheap but non-trivial run used by the CLI-vs-API
// contract tests.
func paritySpec() spec.RunSpec {
	return spec.RunSpec{
		Version:      spec.Version,
		Experiments:  []string{"fig8f"},
		Workloads:    5,
		Instructions: 120_000,
		Warmup:       30_000,
		Seed:         1,
		Workers:      2,
		Output:       spec.Output{Reports: true},
	}
}

// stripManifest re-encodes raw manifest JSON under the StripHostTime
// projection — the form in which two runs of one spec must be
// byte-identical.
func stripManifest(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m melody.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	m.StripHostTime()
	out, err := melody.EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCLIAndAPIManifestParity is the tentpole acceptance contract: a
// spec submitted through the job API and the equivalent CLI execution
// (both riding melody.Execute) produce byte-identical manifests under
// StripHostTime, with equal content addresses; and resubmitting the
// identical spec answers from the store without re-executing.
func TestCLIAndAPIManifestParity(t *testing.T) {
	sp := paritySpec()

	// "CLI" side: exactly what runCmd does with -metrics set.
	tel := melody.NewTelemetry()
	out, err := melody.Execute(context.Background(), sp, melody.ExecHooks{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	cliRaw, err := melody.EncodeManifest(*out.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	cliAddr, err := out.Manifest.Address()
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if out.Manifest.SpecHash != wantHash {
		t.Fatalf("CLI manifest spec_hash = %q, want %q", out.Manifest.SpecHash, wantHash)
	}

	// "API" side: the real serve-mode wiring — jobExecutor through a
	// jobs.Manager behind the HTTP mux.
	var cur atomic.Pointer[melody.RunStatus]
	var execs atomic.Int32
	base := jobExecutor(&cur, nil)
	counting := func(ctx context.Context, sp spec.RunSpec, notify func(jobs.Event)) (jobs.ExecResult, error) {
		execs.Add(1)
		return base(ctx, sp, notify)
	}
	mgr := jobs.New(counting, 4)
	mgr.Vet = melody.VetSpec
	srv := serve.New(nil, nil)
	srv.AttachJobs(mgr)
	running, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer running.Close()
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { mgr.Run(ctx); close(workerDone) }()
	defer func() { cancel(); <-workerDone }()
	url := "http://" + running.Addr().String()

	raw, err := spec.Encode(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs = %d, want 202", resp.StatusCode)
	}
	if st.SpecHash != wantHash {
		t.Fatalf("job spec_hash = %q, want %q", st.SpecHash, wantHash)
	}

	deadline := time.Now().Add(3 * time.Minute)
	for {
		got, ok := mgr.Status(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if got.State == jobs.StateDone {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job ended %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}

	mresp, err := http.Get(url + "/runs/" + st.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var apiRaw bytes.Buffer
	if _, err := apiRaw.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET manifest = %d", mresp.StatusCode)
	}
	apiAddr := mresp.Header.Get("Melody-Manifest-Address")

	// The contract: equal content addresses, byte-identical stripped
	// manifests.
	if apiAddr != cliAddr {
		t.Fatalf("content addresses differ:\n  api %s\n  cli %s", apiAddr, cliAddr)
	}
	cliStripped := stripManifest(t, cliRaw)
	apiStripped := stripManifest(t, apiRaw.Bytes())
	if !bytes.Equal(cliStripped, apiStripped) {
		i := 0
		for i < len(cliStripped) && i < len(apiStripped) && cliStripped[i] == apiStripped[i] {
			i++
		}
		lo := max(0, i-150)
		t.Fatalf("stripped manifests differ at byte %d:\n--- cli ---\n…%s\n--- api ---\n…%s",
			i, cliStripped[lo:min(len(cliStripped), i+150)], apiStripped[lo:min(len(apiStripped), i+150)])
	}

	// Resubmission answers from the content-addressed store: no second
	// execution, same bytes.
	resp2, err := http.Post(url+"/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var st2 jobs.Status
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !st2.CacheHit {
		t.Fatalf("resubmit = %d cacheHit=%v, want 200 cache hit", resp2.StatusCode, st2.CacheHit)
	}
	if execs.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1", execs.Load())
	}
	m2, err := http.Get(url + "/runs/" + st2.ID + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var apiRaw2 bytes.Buffer
	apiRaw2.ReadFrom(m2.Body)
	m2.Body.Close()
	if !bytes.Equal(apiRaw.Bytes(), apiRaw2.Bytes()) {
		t.Fatal("cached resubmission served different manifest bytes")
	}
}

// TestExecuteInterruptedSpec: a canceled context yields an interrupted
// outcome with a flushed partial manifest, not an error — the drain
// contract the job service relies on.
func TestExecuteInterruptedSpec(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tel := melody.NewTelemetry()
	out, err := melody.Execute(ctx, paritySpec(), melody.ExecHooks{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Interrupted {
		t.Fatal("canceled Execute not marked interrupted")
	}
	if len(out.Reports) != 0 {
		t.Fatalf("canceled Execute produced %d reports", len(out.Reports))
	}
	if out.Manifest == nil || !out.Manifest.Interrupted {
		t.Fatalf("partial manifest = %+v, want interrupted flag", out.Manifest)
	}
}

// TestExecuteRejectsUnknownExperiment: resolution fails before any
// work starts, with the id in the error.
func TestExecuteRejectsUnknownExperiment(t *testing.T) {
	sp := paritySpec()
	sp.Experiments = []string{"no-such-figure"}
	_, err := melody.Execute(context.Background(), sp, melody.ExecHooks{})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("no-such-figure")) {
		t.Fatalf("err = %v, want unknown-experiment error naming the id", err)
	}
}
