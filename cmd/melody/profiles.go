package main

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
)

// validateOutputs fail-fasts every output-path flag at parse time:
// file destinations must be creatable, directory destinations must
// exist (they are created) and accept new files. Empty flags are
// skipped.
func validateOutputs(metricsPath, tracePath, profileDir, outDir string) error {
	for _, f := range []struct{ flag, path string }{
		{"-metrics", metricsPath}, {"-trace", tracePath},
	} {
		if f.path == "" {
			continue
		}
		if err := obs.EnsureWritableFile(f.path); err != nil {
			return fmt.Errorf("%s: %w", f.flag, err)
		}
	}
	for _, d := range []struct{ flag, dir string }{
		{"-profile", profileDir}, {"-out", outDir},
	} {
		if d.dir == "" {
			continue
		}
		if err := obs.EnsureWritableDir(d.dir); err != nil {
			return fmt.Errorf("%s: %w", d.flag, err)
		}
	}
	return nil
}

// writeProfiles renders the run's sampled streams into per-experiment
// simulated-time pprof profiles under dir. Generation is strictly
// post-completion: it only reads telemetry the finished run collected.
func writeProfiles(dir string, tel *melody.Telemetry) error {
	series := tel.SampledSeries()
	if len(series) == 0 {
		return fmt.Errorf("no sampled streams collected (is -sample-every set?)")
	}
	for id, prof := range melody.ProfilesByExperiment(series) {
		path := filepath.Join(dir, id+".pb.gz")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := prof.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "melody: profile written to %s\n", path)
	}
	return nil
}
