package main

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
)

// experimentTiming is one experiment's wall time in the run manifest.
type experimentTiming struct {
	ID    string  `json:"id"`
	WallS float64 `json:"wall_s"`
}

// manifest is the -metrics output: enough provenance to reproduce the
// run (versions, seed, parallelism), plus where the time went (per
// experiment and per cell) and the full telemetry registry dump.
type manifest struct {
	Tool        string              `json:"tool"`
	GoVersion   string              `json:"go_version"`
	Module      string              `json:"module,omitempty"`
	OS          string              `json:"os"`
	Arch        string              `json:"arch"`
	NumCPU      int                 `json:"num_cpu"`
	Seed        uint64              `json:"seed"`
	Workers     int                 `json:"workers"`
	Workloads   int                 `json:"workloads"`
	Experiments []experimentTiming  `json:"experiments"`
	Cells       []melody.CellTiming `json:"cells"`
	// Timeseries holds the per-cell sampled streams when -sample-every
	// was set (sorted by workload then config).
	Timeseries []melody.SampledSeries `json:"timeseries"`
	Registry   obs.Snapshot           `json:"registry"`
}

// buildManifest assembles the manifest from a finished run.
func buildManifest(seed uint64, workers, workloads int, exps []experimentTiming, tel *melody.Telemetry) manifest {
	m := manifest{
		Tool:        "melody",
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Workers:     workers,
		Workloads:   workloads,
		Experiments: exps,
		Cells:       tel.Cells(),
		Timeseries:  tel.SampledSeries(),
		Registry:    tel.Registry.Snapshot(),
	}
	if m.Experiments == nil {
		m.Experiments = []experimentTiming{}
	}
	if m.Cells == nil {
		m.Cells = []melody.CellTiming{}
	}
	if m.Timeseries == nil {
		m.Timeseries = []melody.SampledSeries{}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
	}
	return m
}

// writeMetrics writes the manifest as indented JSON.
func writeMetrics(path string, m manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the Chrome trace-event JSON.
func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
