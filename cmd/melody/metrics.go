package main

import (
	"os"

	"github.com/moatlab/melody/internal/obs"
)

// The run-manifest schema and its writer live in internal/melody
// (melody.Manifest / melody.BuildManifest / melody.WriteManifest) so
// the melodydiff regression gate reads exactly what this command
// writes. This file keeps only the trace writer, which has no reader
// in-repo.

// writeTrace writes the Chrome trace-event JSON.
func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
