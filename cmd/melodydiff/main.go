// Command melodydiff is the cross-run regression gate: it compares two
// -metrics run manifests and fails when simulated performance moved in
// the wrong direction beyond a noise threshold.
//
// Usage:
//
//	melodydiff [-threshold 0.05] [-json FILE] [-quiet] OLD NEW
//
// OLD and NEW are manifest files, or http(s) URLs of a live
// observatory's /runs/{id}/manifest endpoint — so the same gate runs
// against artifacts on disk and against a running service.
//
// Alignment is by identity, not order: registry series by metric path,
// sampled streams by (workload, config, platform, experiment). Latency
// histograms and stall counters gate higher-is-worse, device bandwidth
// lower-is-worse; host wall times are reported but never gate (they
// measure the CI machine, not the simulator).
//
// Exit codes: 0 clean, 1 regressions found, 2 usage or load error —
// so CI can distinguish "perf regressed" from "gate itself broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/moatlab/melody/internal/melody/diff"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("melodydiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", diff.DefaultThreshold,
		"relative noise threshold (0.05 = 5%)")
	jsonPath := fs.String("json", "", "also write the machine-readable report to `FILE`")
	quiet := fs.Bool("quiet", false, "suppress the table; exit code only")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: melodydiff [flags] OLD NEW\n")
		fmt.Fprintf(stderr, "OLD/NEW: manifest file, or http(s) URL of /runs/{id}/manifest\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *threshold < 0 {
		fmt.Fprintln(stderr, "melodydiff: -threshold must be >= 0")
		return 2
	}

	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldM, err := diff.Load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "melodydiff: %v\n", err)
		return 2
	}
	newM, err := diff.Load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "melodydiff: %v\n", err)
		return 2
	}

	rep := diff.Compare(oldM, newM, diff.Options{Threshold: *threshold})
	rep.OldPath, rep.NewPath = oldPath, newPath

	if !*quiet {
		fmt.Fprint(stdout, rep.Table())
	}
	if *jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			fmt.Fprintf(stderr, "melodydiff: encode report: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*jsonPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "melodydiff: %v\n", err)
			return 2
		}
	}
	if rep.HasRegressions() {
		return 1
	}
	return 0
}
