package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
)

// writeManifest writes a minimal gate-able manifest with the given
// latency mean.
func writeManifest(t *testing.T, dir, name string, latencyMean float64) string {
	t.Helper()
	m := melody.Manifest{
		Tool: "melody", Seed: 7, Workers: 2, Workloads: 4,
		Experiments: []melody.ExperimentTiming{{ID: "fig5", WallS: 1}},
		Cells: []melody.CellTiming{
			{Workload: "w", Config: "CXL-B", Platform: "EMR2S", Seed: 3, WallMs: 2},
		},
		Timeseries: []melody.SampledSeries{},
		Registry: obs.Snapshot{
			Counters: map[string]uint64{},
			Gauges:   map[string]float64{},
			Histograms: map[string]obs.Summary{
				"device/EMR2S/CXL-B/latency_ns": {Count: 100, Mean: latencyMean, P99: latencyMean * 2},
			},
		},
	}
	path := filepath.Join(dir, name)
	if err := melody.WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 400)
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no changes beyond threshold") {
		t.Fatalf("stdout:\n%s", out.String())
	}
}

func TestRunRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480) // +20% latency
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGR") {
		t.Fatalf("stdout:\n%s", out.String())
	}
	// Order matters: improvement direction exits clean.
	if code := run([]string{b, a}, &out, &errb); code != 0 {
		t.Fatalf("improvement exit = %d", code)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480)
	var out, errb bytes.Buffer
	// +20% is inside a 30% threshold.
	if code := run([]string{"-threshold", "0.3", a, b}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := run([]string{"-threshold", "-1", a, b}, &out, &errb); code != 2 {
		t.Fatalf("negative threshold exit = %d", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480)
	jsonPath := filepath.Join(dir, "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", jsonPath, "-quiet", a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if out.Len() != 0 {
		t.Fatalf("-quiet still wrote table:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Old         string `json:"old"`
		Regressions []any  `json:"regressions"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Old != a || len(rep.Regressions) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunUsageAndLoadErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one arg exit = %d", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("stderr:\n%s", errb.String())
	}
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	if code := run([]string{a, filepath.Join(dir, "missing.json")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit = %d", code)
	}
	foreign := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"tool":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{a, foreign}, &out, &errb); code != 2 {
		t.Fatalf("foreign manifest exit = %d", code)
	}
}
