package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/moatlab/melody/internal/melody"
	"github.com/moatlab/melody/internal/obs"
)

// writeManifest writes a minimal gate-able manifest with the given
// latency mean.
func writeManifest(t *testing.T, dir, name string, latencyMean float64) string {
	t.Helper()
	m := melody.Manifest{
		Tool: "melody", Seed: 7, Workers: 2, Workloads: 4,
		Experiments: []melody.ExperimentTiming{{ID: "fig5", WallS: 1}},
		Cells: []melody.CellTiming{
			{Workload: "w", Config: "CXL-B", Platform: "EMR2S", Seed: 3, WallMs: 2},
		},
		Timeseries: []melody.SampledSeries{},
		Registry: obs.Snapshot{
			Counters: map[string]uint64{},
			Gauges:   map[string]float64{},
			Histograms: map[string]obs.Summary{
				"device/EMR2S/CXL-B/latency_ns": {Count: 100, Mean: latencyMean, P99: latencyMean * 2},
			},
		},
	}
	path := filepath.Join(dir, name)
	if err := melody.WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 400)
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no changes beyond threshold") {
		t.Fatalf("stdout:\n%s", out.String())
	}
}

func TestRunRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480) // +20% latency
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGR") {
		t.Fatalf("stdout:\n%s", out.String())
	}
	// Order matters: improvement direction exits clean.
	if code := run([]string{b, a}, &out, &errb); code != 0 {
		t.Fatalf("improvement exit = %d", code)
	}
}

func TestRunThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480)
	var out, errb bytes.Buffer
	// +20% is inside a 30% threshold.
	if code := run([]string{"-threshold", "0.3", a, b}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if code := run([]string{"-threshold", "-1", a, b}, &out, &errb); code != 2 {
		t.Fatalf("negative threshold exit = %d", code)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480)
	jsonPath := filepath.Join(dir, "report.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-json", jsonPath, "-quiet", a, b}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if out.Len() != 0 {
		t.Fatalf("-quiet still wrote table:\n%s", out.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Old         string `json:"old"`
		Regressions []any  `json:"regressions"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Old != a || len(rep.Regressions) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunUsageAndLoadErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one arg exit = %d", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Fatalf("stderr:\n%s", errb.String())
	}
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	if code := run([]string{a, filepath.Join(dir, "missing.json")}, &out, &errb); code != 2 {
		t.Fatalf("missing file exit = %d", code)
	}
	foreign := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"tool":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{a, foreign}, &out, &errb); code != 2 {
		t.Fatalf("foreign manifest exit = %d", code)
	}
}

// TestRunURLOperands points the gate at a live HTTP server — the
// /runs/{id}/manifest shape — mixing a URL operand with a file operand.
func TestRunURLOperands(t *testing.T) {
	dir := t.TempDir()
	a := writeManifest(t, dir, "a.json", 400)
	b := writeManifest(t, dir, "b.json", 480)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/runs/run-000001/manifest":
			http.ServeFile(w, r, a)
		case "/runs/run-000002/manifest":
			http.ServeFile(w, r, b)
		default:
			http.Error(w, "unknown job", http.StatusNotFound)
		}
	}))
	defer srv.Close()

	var out, errb bytes.Buffer
	if code := run([]string{srv.URL + "/runs/run-000001/manifest", srv.URL + "/runs/run-000002/manifest"}, &out, &errb); code != 1 {
		t.Fatalf("URL regression exit = %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "REGR") {
		t.Fatalf("stdout:\n%s", out.String())
	}
	// Mixed operands: file OLD, URL NEW.
	if code := run([]string{b, srv.URL + "/runs/run-000001/manifest"}, &out, &errb); code != 0 {
		t.Fatalf("mixed-operand improvement exit = %d, stderr:\n%s", code, errb.String())
	}
	// A 404 from the service is a load error (exit 2), not a pass.
	errb.Reset()
	if code := run([]string{a, srv.URL + "/runs/run-000099/manifest"}, &out, &errb); code != 2 {
		t.Fatalf("404 operand exit = %d", code)
	}
	if !strings.Contains(errb.String(), "404") {
		t.Fatalf("stderr:\n%s", errb.String())
	}
}
